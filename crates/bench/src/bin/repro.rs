//! Reproduction harness: regenerates every table and figure of the paper,
//! driven by the campaign engine.
//!
//! ```text
//! repro table1 [--budget-ms N] [--extended] [--spin]   Table I  (verification outcomes)
//! repro table2 [--budget-ms N] [--extended] [--spin]   Table II (PB vs XCVerifier)
//! repro fig1   [--budget-ms N]                Figure 1 (PBE region maps, PB + verifier)
//! repro fig2   [--budget-ms N]                Figure 2 (LYP region maps, PB + verifier)
//! repro all    [--budget-ms N] [--out DIR]
//! ```
//!
//! ASCII maps go to stdout; SVG renderings and markdown tables are written
//! under `--out` (default `results/`). Tables run as one [`Campaign`]: the
//! whole matrix is scheduled across the thread pool, per-pair progress
//! streams through campaign events, and the report renders directly.

use std::fs;
use std::path::PathBuf;
use xcv_bench::{config_for, default_grid, verifier_for};
use xcv_conditions::Condition;
use xcv_core::{Campaign, CampaignEvent, CampaignReport, Encoder, TableMark};
use xcv_functionals::{FunctionalHandle, Registry};
use xcv_report as report;

struct Opts {
    budget_ms: u64,
    out: PathBuf,
    extended: bool,
    spin: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        budget_ms: 150,
        out: PathBuf::from("results"),
        extended: false,
        spin: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget-ms" => {
                i += 1;
                o.budget_ms = args[i].parse().expect("--budget-ms takes an integer");
            }
            "--out" => {
                i += 1;
                o.out = PathBuf::from(&args[i]);
            }
            "--extended" => o.extended = true,
            "--spin" => o.spin = true,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: repro <table1|table2|fig1|fig2|regularization|all> \
             [--budget-ms N] [--out DIR] [--extended]"
        );
        std::process::exit(2);
    };
    let opts = parse_opts(&args[1..]);
    fs::create_dir_all(&opts.out).expect("create output dir");
    // The figure panels are named registry columns, not enum variants — any
    // registered functional (extended or spin set included) can be drawn.
    let registry = matrix_registry(&opts);
    let by_name = |name: &str| -> FunctionalHandle {
        registry
            .require(name)
            .expect("figure functional registered")
    };
    match cmd.as_str() {
        "table1" => {
            table1(&opts);
        }
        "table2" => {
            table2(&opts);
        }
        "fig1" => figure(&opts, &by_name("PBE"), 1),
        "fig2" => figure(&opts, &by_name("LYP"), 2),
        "regularization" => regularization(&opts),
        "all" => {
            // One campaign feeds both tables — the solver work dominates
            // and Table II only adds the (cheap) PB grid pass.
            let campaign_report = run_matrix_campaign(&opts);
            render_table1(&opts, &campaign_report);
            render_table2(&opts, &campaign_report);
            figure(&opts, &by_name("PBE"), 1);
            figure(&opts, &by_name("LYP"), 2);
            regularization(&opts);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// The figure panels: (figure number, conditions shown).
fn figure_conditions(fig: u32) -> [Condition; 3] {
    match fig {
        1 => [
            Condition::EcNonPositivity,
            Condition::LiebOxfordExt,
            Condition::ConjTcUpperBound,
        ],
        _ => [
            Condition::EcNonPositivity,
            Condition::EcScaling,
            Condition::TcUpperBound,
        ],
    }
}

/// The registry behind the requested matrix: the paper's five, the extended
/// seven, or (with `--spin`) the spin-general set including the ζ-resolved
/// citizens.
fn matrix_registry(opts: &Opts) -> Registry {
    match (opts.spin, opts.extended) {
        (true, _) => Registry::spin_general(),
        (false, true) => Registry::extended(),
        (false, false) => Registry::builtin(),
    }
}

/// Run the full matrix as one campaign, streaming per-pair progress lines.
/// Scheduling starts *measured* when a persisted cost model is available
/// (the `cost_model` entry of `BENCH_solver.json`), and falls back to the
/// hand-weighted `pair_cost` ranking otherwise.
fn run_matrix_campaign(opts: &Opts) -> CampaignReport {
    let registry = matrix_registry(opts);
    let budget = opts.budget_ms;
    let mut builder = Campaign::builder();
    if let Some(m) = xcv_bench::load_cost_model() {
        eprintln!(
            "  scheduler: measured cost model ({} samples, r\u{b2} {:.2}) from BENCH_solver.json",
            m.samples, m.r2
        );
        builder = builder.cost_model(m);
    }
    builder
        .registry(&registry)
        .config_policy(move |f, _cond| config_for(f, budget))
        .on_event(|e| {
            if let CampaignEvent::PairFinished {
                functional,
                condition,
                mark,
                wall_ms,
            } = e
            {
                eprintln!(
                    "  {functional:10} / {:28} -> {:3}  ({wall_ms} ms)",
                    condition.name(),
                    mark.symbol(),
                );
            }
        })
        .build()
        .expect("registry is non-empty")
        .run()
}

fn table1(opts: &Opts) {
    let campaign_report = run_matrix_campaign(opts);
    render_table1(opts, &campaign_report);
}

fn table2(opts: &Opts) {
    let campaign_report = run_matrix_campaign(opts);
    render_table2(opts, &campaign_report);
}

fn render_table1(opts: &Opts, campaign_report: &CampaignReport) {
    println!("== Table I (per-box budget {} ms) ==", opts.budget_ms);
    let t1 = report::Table1::from_campaign(campaign_report);
    let md = t1.render_markdown();
    println!("{md}");
    let decided = t1.count(|m| matches!(m, TableMark::Verified | TableMark::Counterexample));
    let partial = t1.count(|m| m == TableMark::PartiallyVerified);
    let unknown = t1.count(|m| m == TableMark::Unknown);
    // The paper's 13/7/11 baseline only applies to its own 31-pair matrix.
    let baseline = if opts.extended {
        String::new()
    } else {
        " (paper: 13 / 7 / 11)".to_string()
    };
    println!(
        "summary: {decided} verified-or-refuted, {partial} partially verified, \
         {unknown} timeout/inconclusive{baseline}"
    );
    println!(
        "campaign: {} encoded pairs, wall time {} ms",
        campaign_report.encoded_pairs(),
        campaign_report.wall_ms
    );
    fs::write(opts.out.join("table1.md"), md).expect("write table1.md");
}

fn render_table2(opts: &Opts, campaign_report: &CampaignReport) {
    println!("== Table II (per-box budget {} ms) ==", opts.budget_ms);
    let t2 = report::Table2::from_campaign(campaign_report, &default_grid());
    let md = t2.render_markdown();
    println!("{md}");
    fs::write(opts.out.join("table2.md"), md).expect("write table2.md");
}

fn figure(opts: &Opts, f: &FunctionalHandle, fig: u32) {
    let name = f.name();
    println!("== Figure {fig}: {name} region maps (PB top, XCVerifier bottom) ==");
    let grid_cfg = default_grid();
    for (panel, cond) in figure_conditions(fig).into_iter().enumerate() {
        let letter = (b'a' + panel as u8) as char;
        println!("\n--- Fig {fig}{letter}: {name} / {cond} — PB grid ---");
        if let Ok(grid) = xcv_grid::pb_check(f, cond, &grid_cfg) {
            println!("{}", report::ascii_grid_map(&grid, 60, 20));
            println!(
                "PB: {} ({} of {} grid points violate)",
                if grid.satisfied() {
                    "no violations"
                } else {
                    "violations found"
                },
                grid.n_violations(),
                grid.pass.len()
            );
        }
        let letter2 = (b'd' + panel as u8) as char;
        println!("--- Fig {fig}{letter2}: {name} / {cond} — XCVerifier ---");
        if let Ok(p) = Encoder::encode(f, cond) {
            let map = verifier_for(f.as_ref(), opts.budget_ms).verify(&p);
            println!("{}", report::ascii_region_map(&map, 60, 20));
            println!(
                "verifier: {} | verified {:.0}% of the domain volume, \
                 counterexample {:.0}%, undecided {:.0}%",
                map.table_mark(),
                100.0 * map.volume_fraction(|s| matches!(s, xcv_core::RegionStatus::Verified)),
                100.0
                    * map.volume_fraction(|s| matches!(
                        s,
                        xcv_core::RegionStatus::Counterexample(_)
                    )),
                100.0
                    * map.volume_fraction(|s| matches!(
                        s,
                        xcv_core::RegionStatus::Timeout | xcv_core::RegionStatus::Inconclusive
                    )),
            );
            let file = format!(
                "fig{fig}{letter2}_{}_{}.svg",
                name.to_lowercase().replace(' ', "_"),
                cond.name().to_lowercase().replace(' ', "_")
            );
            let svg = report::svg_region_map(&map, &format!("{name} / {cond}"));
            fs::write(opts.out.join(&file), svg).expect("write svg");
            println!("wrote {}", opts.out.join(&file).display());
        }
    }
}

/// Section VI-A experiment: does regularizing SCAN's α-switch (the rSCAN
/// family) restore solver decidability? Runs SCAN and the regularized
/// variant on the same conditions at the same budget — as one campaign —
/// and compares decided domain volume.
fn regularization(opts: &Opts) {
    println!("== Regularization experiment (SCAN vs rSCAN-style, Section VI-A) ==");
    let conds = [
        Condition::EcNonPositivity,
        Condition::EcScaling,
        Condition::ConjTcUpperBound,
    ];
    let budget = opts.budget_ms;
    let registry = Registry::extended();
    let campaign_report = Campaign::builder()
        .functionals([
            registry.require("SCAN").expect("builtin"),
            registry.require("rSCAN(reg)").expect("builtin"),
        ])
        .conditions(conds)
        .config_policy(move |f, _| config_for(f, budget))
        .build()
        .expect("two functionals")
        .run();
    let decided_frac = |name: &str, cond: Condition| -> f64 {
        campaign_report
            .outcome(name, cond)
            .and_then(|p| p.map.as_ref())
            .map(|m| {
                m.volume_fraction(|s| {
                    matches!(
                        s,
                        xcv_core::RegionStatus::Verified
                            | xcv_core::RegionStatus::Counterexample(_)
                    )
                })
            })
            .unwrap_or(0.0)
    };
    let mut lines = Vec::new();
    lines.push("| condition | SCAN decided vol. | rSCAN(reg) decided vol. |".to_string());
    lines.push("|---|---|---|".to_string());
    for cond in conds {
        let scan = decided_frac("SCAN", cond);
        let rscan = decided_frac("rSCAN(reg)", cond);
        eprintln!(
            "  SCAN {:.1}% vs rSCAN(reg) {:.1}% on {}",
            100.0 * scan,
            100.0 * rscan,
            cond.name()
        );
        lines.push(format!(
            "| {} | {:.1}% | {:.1}% |",
            cond.name(),
            100.0 * scan,
            100.0 * rscan
        ));
    }
    let md = lines.join("\n");
    println!("{md}");
    fs::write(opts.out.join("regularization.md"), md).expect("write regularization.md");
}
