//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1 [--budget-ms N]          Table I  (verification outcomes)
//! repro table2 [--budget-ms N]          Table II (PB vs XCVerifier)
//! repro fig1   [--budget-ms N]          Figure 1 (PBE region maps, PB + verifier)
//! repro fig2   [--budget-ms N]          Figure 2 (LYP region maps, PB + verifier)
//! repro all    [--budget-ms N] [--out DIR]
//! ```
//!
//! ASCII maps go to stdout; SVG renderings and markdown tables are written
//! under `--out` (default `results/`).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;
use xcv_bench::{default_grid, verifier_for};
use xcv_conditions::Condition;
use xcv_core::{Encoder, TableMark};
use xcv_functionals::Dfa;
use xcv_report as report;

struct Opts {
    budget_ms: u64,
    out: PathBuf,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        budget_ms: 150,
        out: PathBuf::from("results"),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget-ms" => {
                i += 1;
                o.budget_ms = args[i].parse().expect("--budget-ms takes an integer");
            }
            "--out" => {
                i += 1;
                o.out = PathBuf::from(&args[i]);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: repro <table1|table2|fig1|fig2|regularization|all> \
             [--budget-ms N] [--out DIR]"
        );
        std::process::exit(2);
    };
    let opts = parse_opts(&args[1..]);
    fs::create_dir_all(&opts.out).expect("create output dir");
    match cmd.as_str() {
        "table1" => {
            table1(&opts);
        }
        "table2" => {
            table2(&opts);
        }
        "fig1" => figure(&opts, Dfa::Pbe, 1),
        "fig2" => figure(&opts, Dfa::Lyp, 2),
        "regularization" => regularization(&opts),
        "all" => {
            table1(&opts);
            table2(&opts);
            figure(&opts, Dfa::Pbe, 1);
            figure(&opts, Dfa::Lyp, 2);
            regularization(&opts);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// The figure panels: (figure number, conditions shown).
fn figure_conditions(fig: u32) -> [Condition; 3] {
    match fig {
        1 => [
            Condition::EcNonPositivity,
            Condition::LiebOxfordExt,
            Condition::ConjTcUpperBound,
        ],
        _ => [
            Condition::EcNonPositivity,
            Condition::EcScaling,
            Condition::TcUpperBound,
        ],
    }
}

fn table1(opts: &Opts) {
    println!("== Table I (per-box budget {} ms) ==", opts.budget_ms);
    let start = Instant::now();
    let mut cells = Vec::new();
    for cond in Condition::all() {
        for dfa in [Dfa::Pbe, Dfa::Lyp, Dfa::Am05, Dfa::Scan, Dfa::VwnRpa] {
            let t0 = Instant::now();
            let mark = match Encoder::encode(dfa, cond) {
                Some(p) => verifier_for(dfa, opts.budget_ms).verify(&p).table_mark(),
                None => TableMark::NotApplicable,
            };
            eprintln!(
                "  {dfa:8} / {:28} -> {:3}  ({:.1?})",
                cond.name(),
                mark.symbol(),
                t0.elapsed()
            );
            cells.push((dfa, cond, mark));
        }
    }
    let t1 = report::Table1 { cells };
    let md = t1.render_markdown();
    println!("{md}");
    let decided = t1.count(|m| matches!(m, TableMark::Verified | TableMark::Counterexample));
    let partial = t1.count(|m| m == TableMark::PartiallyVerified);
    let unknown = t1.count(|m| m == TableMark::Unknown);
    println!(
        "summary: {decided} verified-or-refuted, {partial} partially verified, \
         {unknown} timeout/inconclusive (paper: 13 / 7 / 11)"
    );
    println!("total wall time: {:.1?}", start.elapsed());
    fs::write(opts.out.join("table1.md"), md).expect("write table1.md");
}

fn table2(opts: &Opts) {
    println!("== Table II (per-box budget {} ms) ==", opts.budget_ms);
    let grid_cfg = default_grid();
    let mut cells = Vec::new();
    for cond in Condition::all() {
        for dfa in [Dfa::Pbe, Dfa::Lyp, Dfa::Am05, Dfa::Scan, Dfa::VwnRpa] {
            let pr = report::run_pair(dfa, cond, &verifier_for(dfa, opts.budget_ms), &grid_cfg);
            let c = pr.consistency();
            eprintln!("  {dfa:8} / {:28} -> {}", cond.name(), c.symbol());
            cells.push((dfa, cond, c));
        }
    }
    let t2 = report::Table2 { cells };
    let md = t2.render_markdown();
    println!("{md}");
    fs::write(opts.out.join("table2.md"), md).expect("write table2.md");
}

fn figure(opts: &Opts, dfa: Dfa, fig: u32) {
    println!("== Figure {fig}: {dfa} region maps (PB top, XCVerifier bottom) ==");
    let grid_cfg = default_grid();
    for (panel, cond) in figure_conditions(fig).into_iter().enumerate() {
        let letter = (b'a' + panel as u8) as char;
        println!("\n--- Fig {fig}{letter}: {dfa} / {cond} — PB grid ---");
        if let Some(grid) = xcv_grid::pb_check(dfa, cond, &grid_cfg) {
            println!("{}", report::ascii_grid_map(&grid, 60, 20));
            println!(
                "PB: {} ({} of {} grid points violate)",
                if grid.satisfied() { "no violations" } else { "violations found" },
                grid.n_violations(),
                grid.pass.len()
            );
        }
        let letter2 = (b'd' + panel as u8) as char;
        println!("--- Fig {fig}{letter2}: {dfa} / {cond} — XCVerifier ---");
        if let Some(p) = Encoder::encode(dfa, cond) {
            let map = verifier_for(dfa, opts.budget_ms).verify(&p);
            println!("{}", report::ascii_region_map(&map, 60, 20));
            println!(
                "verifier: {} | verified {:.0}% of the domain volume, \
                 counterexample {:.0}%, undecided {:.0}%",
                map.table_mark(),
                100.0 * map.volume_fraction(|s| matches!(s, xcv_core::RegionStatus::Verified)),
                100.0 * map.volume_fraction(
                    |s| matches!(s, xcv_core::RegionStatus::Counterexample(_))
                ),
                100.0 * map.volume_fraction(|s| matches!(
                    s,
                    xcv_core::RegionStatus::Timeout | xcv_core::RegionStatus::Inconclusive
                )),
            );
            let name = format!(
                "fig{fig}{letter2}_{}_{}.svg",
                dfa.info().name.to_lowercase().replace(' ', "_"),
                cond.name().to_lowercase().replace(' ', "_")
            );
            let svg = report::svg_region_map(&map, &format!("{dfa} / {cond}"));
            fs::write(opts.out.join(&name), svg).expect("write svg");
            println!("wrote {}", opts.out.join(&name).display());
        }
    }
}

/// Section VI-A experiment: does regularizing SCAN's α-switch (the rSCAN
/// family) restore solver decidability? Runs SCAN and the regularized
/// variant on the same conditions at the same budget and compares decided
/// domain volume.
fn regularization(opts: &Opts) {
    println!("== Regularization experiment (SCAN vs rSCAN-style, Section VI-A) ==");
    let conds = [
        Condition::EcNonPositivity,
        Condition::EcScaling,
        Condition::ConjTcUpperBound,
    ];
    let mut lines = Vec::new();
    lines.push("| condition | SCAN decided vol. | rSCAN(reg) decided vol. |".to_string());
    lines.push("|---|---|---|".to_string());
    for cond in conds {
        let mut decided = Vec::new();
        for dfa in [Dfa::Scan, Dfa::RScan] {
            let p = Encoder::encode(dfa, cond).expect("applies");
            let map = verifier_for(dfa, opts.budget_ms).verify(&p);
            let frac = map.volume_fraction(|s| {
                matches!(
                    s,
                    xcv_core::RegionStatus::Verified
                        | xcv_core::RegionStatus::Counterexample(_)
                )
            });
            eprintln!("  {dfa:12} / {:28} decided {:.1}%", cond.name(), 100.0 * frac);
            decided.push(frac);
        }
        lines.push(format!(
            "| {} | {:.1}% | {:.1}% |",
            cond.name(),
            100.0 * decided[0],
            100.0 * decided[1]
        ));
    }
    let md = lines.join("\n");
    println!("{md}");
    fs::write(opts.out.join("regularization.md"), md).expect("write regularization.md");
}
