//! Symbolic/scalar cross-validation over the whole registry (promoted from
//! spot-checks in `benches/functional_eval.rs` to a proper test): every
//! registered functional's expression DAG and closed-form scalar
//! implementation must agree on a coarse Pederson–Burke grid — the
//! LIBXC-vs-encoder consistency the verification pipeline rests on.

use xcv_conditions::{ALPHA_MAX, RS_MAX, RS_MIN, S_MAX};
use xcv_expr::Tape;
use xcv_functionals::{Family, Registry};

fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[test]
fn every_registry_functional_dag_matches_scalar_on_pb_grid() {
    for f in Registry::extended().iter() {
        let eps_expr = f.eps_c_expr();
        let fx_expr = f.f_x_expr();
        assert_eq!(
            fx_expr.is_some(),
            f.info().has_exchange,
            "{}: metadata disagrees with f_x_expr",
            f.name()
        );
        let alphas = match f.info().family {
            Family::MetaGga => grid(0.0, ALPHA_MAX, 4),
            _ => vec![0.0],
        };
        for &rs in &grid(RS_MIN, RS_MAX, 7) {
            for &s in &grid(0.0, S_MAX, 7) {
                for &alpha in &alphas {
                    let sym = eps_expr.eval(&[rs, s, alpha]).unwrap();
                    let num = f.eps_c(rs, s, alpha);
                    assert!(
                        (sym - num).abs() <= 1e-9 * num.abs().max(1e-10),
                        "{}: ε_c DAG {sym} vs scalar {num} at ({rs}, {s}, {alpha})",
                        f.name()
                    );
                    // AM05's F_x has a removable singularity at s = 0 that
                    // only the scalar code special-cases; compare off it.
                    if s == 0.0 {
                        continue;
                    }
                    if let (Some(fx_e), Some(fx_n)) = (&fx_expr, f.f_x(s, alpha)) {
                        let sym = fx_e.eval(&[rs, s, alpha]).unwrap();
                        assert!(
                            (sym - fx_n).abs() <= 1e-9 * fx_n.abs().max(1e-10),
                            "{}: F_x DAG {sym} vs scalar {fx_n} at ({s}, {alpha})",
                            f.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn compiled_tape_matches_dag_on_pb_grid() {
    // The third evaluation path (the compiled tape the benchmarks time) must
    // agree bit-for-bit with the recursive DAG walk.
    for f in Registry::builtin().iter() {
        let expr = f.eps_c_expr();
        let tape = Tape::compile(&expr);
        let mut scratch = tape.scratch();
        for &rs in &grid(RS_MIN, RS_MAX, 5) {
            for &s in &grid(0.0, S_MAX, 5) {
                let p = [rs, s, 1.0];
                let a = expr.eval(&p).unwrap();
                let b = tape.eval(&p, &mut scratch);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: tape {b} vs DAG {a} at {p:?}",
                    f.name()
                );
            }
        }
    }
}
