//! Regression pins on the checked-in `BENCH_solver.json` snapshot (written
//! by the `solver_bench` binary): schema v7 (per-mode `timeouts` counts,
//! the escalation-ladder entry and its timeout trajectory, and the
//! verification-service entry — warm repeat served from cache, marks
//! identical, zero warm tape compilations), a
//! persisted measured cost model, the batched-engine guarantee — batched-session wall is faster
//! than the scalar-session wall *on the snapshot*, with identical tallies
//! and TableMarks (asserted inside the binary at write time) — and the
//! scheduling-order guarantee: cost-aware order is never slower than
//! matrix order by more than 10% on the snapshot (the wall-clocks in the
//! file are min-of-2 on the machine that produced it; CI re-runs the
//! binary separately with its own noise slack).

use std::path::PathBuf;

fn snapshot() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_solver.json");
    std::fs::read_to_string(&path).expect("checked-in BENCH_solver.json")
}

/// Extract the raw text of `"key": <value>` at any nesting level (keys used
/// here are unique in the schema). Good enough for a pinned snapshot; not a
/// JSON parser.
fn field<'a>(json: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = json
        .find(&needle)
        .unwrap_or_else(|| panic!("missing {key}"))
        + needle.len();
    let rest = json[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('[') {
        // Array value (flat in this schema): up to the closing bracket.
        return stripped[..stripped.find(']').expect("closing bracket")].trim();
    }
    let end = rest.find([',', '}', ']']).expect("value terminator");
    rest[..end].trim()
}

fn number(json: &str, key: &str) -> f64 {
    field(json, key).parse().unwrap_or_else(|e| {
        panic!("{key} is not a number: {e}");
    })
}

#[test]
fn snapshot_is_schema_v7_with_a_cost_model() {
    let json = snapshot();
    assert_eq!(field(&json, "schema"), "\"xcv-bench-solver/v7\"");
    let model = &json[json.find("\"cost_model\"").expect("cost_model entry")..];
    assert_eq!(field(model, "kind"), "\"log-linear\"");
    // Four finite weights, a positive sample count, and a sane r².
    let weights = field(model, "weights");
    let parsed: Vec<f64> = weights
        .split(',')
        .map(|w| w.trim().parse().expect("weight"))
        .collect();
    assert_eq!(parsed.len(), 4, "{weights}");
    assert!(parsed.iter().all(|w| w.is_finite()), "{weights}");
    assert!(number(model, "samples") >= 40.0, "fit over the matrix");
    let r2 = number(model, "r2");
    assert!((0.0..=1.0).contains(&r2), "r² = {r2}");
}

#[test]
fn snapshot_mode_entries_count_timeouts() {
    // v5: every mode entry carries a `timeouts` count (box-level budget
    // exhaustions), so a budget-starved benchmark run is visible in the
    // snapshot itself. The four rung-0 `total` modes replay the same
    // search, so their timeout tallies must agree exactly — a drift here
    // means one engine stopped exploring the tree the others explored.
    // (v6 adds the fifth, `ladder` mode — its tally legitimately differs:
    // that is the point — and a `"timeouts": [...]` trajectory array,
    // which the scalar parse below skips.)
    let json = snapshot();
    let totals: Vec<f64> = json
        .match_indices("\"timeouts\":")
        .filter_map(|(i, _)| field(&json[i..], "timeouts").parse().ok())
        .collect();
    assert!(
        totals.len() >= 5,
        "expected a timeouts count in each mode entry, found {}",
        totals.len()
    );
    assert!(!json.contains("\"timeout\":"), "v4 singular key resurfaced");
    let session = totals[0];
    assert!(
        totals[..4].iter().all(|t| *t == session),
        "mode timeout tallies diverged: {totals:?}"
    );
    // totals[4] is the ladder mode, pinned separately below.
}

#[test]
fn snapshot_ladder_entry_pins_the_timeout_tail() {
    // The v6 `ladder` entry: the escalation ladder's whole reason to
    // exist is the timeout tail, so the snapshot pins the trajectory
    // `[rung 0, rung 1, full ladder]` — the full ladder must cut the
    // rung-0 timeout count (620 at the time of pinning) by at least 170
    // boxes without a single Unsat regression, at no more than a 20%
    // wall premium over the plain batched session it extends (the
    // measured point behind `Escalation::full()`'s defaults is 417
    // timeouts at a 1.10x wall ratio; deeper escalation reaches 399 but
    // at 1.4x wall — see the depth-cap notes on [`xcv_solver::Escalation`]).
    let json = snapshot();
    // The top-level ladder entry (per-pair records carry a `"ladder":
    // {"nodes": ...}` sub-object each; only the top-level one leads with
    // the escalation name).
    let ladder = &json[json
        .find("\"ladder\": {\"escalation\"")
        .expect("ladder entry")..];
    assert_eq!(field(ladder, "escalation"), "\"full\"");
    let trajectory: Vec<f64> = field(ladder, "timeouts")
        .split(',')
        .map(|t| t.trim().parse().expect("trajectory count"))
        .collect();
    assert_eq!(trajectory.len(), 3, "rung 0, rung 1, full");
    let session = {
        let total = &json[json.find("\"total\"").expect("total entry")..];
        number(total, "timeouts")
    };
    assert_eq!(trajectory[0], session, "trajectory starts at rung 0");
    assert!(
        trajectory[2] <= 450.0,
        "ladder left too much of the timeout tail: {trajectory:?}"
    );
    assert!(
        trajectory[2] <= trajectory[0] - 170.0,
        "ladder lost its pruning power on timeouts: {trajectory:?}"
    );
    assert_eq!(number(ladder, "unsat_regressions"), 0.0);
    assert!(number(ladder, "resolved_timeouts") >= 200.0);
    let wall = number(ladder, "wall_ms");
    let batched = number(ladder, "batched_wall_ms");
    assert!(wall > 0.0 && batched > 0.0);
    assert!(
        wall <= 1.20 * batched,
        "ladder mode wall premium regressed over the batched session: \
         {wall:.0} ms vs {batched:.0} ms"
    );
    // At least one previously all-timeout row produces decisions now: the
    // rSCAN / Ec-scaling cell was 64 boxes, 64 timeouts at rung 0.
    let pair = json
        .find("\"functional\": \"rSCAN(reg)\", \"condition\": \"Ec scaling inequality\"")
        .expect("rSCAN Ec-scaling pair record");
    let rec = &json[pair..];
    let pair_session = number(rec, "timeouts");
    let pair_ladder = {
        let l = &rec[rec.find("\"ladder\":").expect("pair ladder entry")..];
        number(l, "timeouts")
    };
    assert!(
        pair_ladder < pair_session,
        "rSCAN / Ec scaling: ladder resolved nothing ({pair_ladder} vs {pair_session})"
    );
}

#[test]
fn cost_aware_not_slower_than_matrix_order_on_snapshot() {
    let json = snapshot();
    let campaign = &json[json.find("\"campaign\"").expect("campaign entry")..];
    let matrix = number(campaign, "matrix_order_wall_ms");
    let cost = number(campaign, "cost_aware_wall_ms");
    assert!(matrix > 0.0 && cost > 0.0);
    assert!(
        cost <= 1.10 * matrix,
        "measured-cost schedule regressed: {cost:.1} ms vs matrix {matrix:.1} ms"
    );
}

#[test]
fn snapshot_still_beats_the_seed_architecture() {
    // Carried over from the v2 pins: the compile-once session path keeps
    // its headline speedup on the recorded snapshot.
    let json = snapshot();
    let total = &json[json.find("\"total\"").expect("total entry")..];
    assert!(number(total, "speedup_vs_seed") >= 1.5);
}

#[test]
fn snapshot_cost_model_loads_for_campaign_startup() {
    // The `repro`/`xcverify` binaries start campaigns from this persisted
    // model ([`xcv_core::CostModel::load_bench_json`]); the checked-in
    // snapshot must stay loadable, not just well-formed text.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_solver.json");
    let m = xcv_core::CostModel::load_bench_json(&path).expect("persisted model loads");
    assert!(m.samples >= 40);
    assert!((0.0..=1.0).contains(&m.r2));
    assert!(m.weights.iter().all(|w| w.is_finite()));
    // And it ranks like a cost model should: the meta-GGA second-derivative
    // cell costs more than the LDA sign check.
    use xcv_conditions::Condition;
    use xcv_functionals::Dfa;
    assert!(
        m.predict(&Dfa::Scan, Condition::UcMonotonicity)
            > m.predict(&Dfa::VwnRpa, Condition::EcNonPositivity)
    );
}

#[test]
fn snapshot_batched_entry_pins_batched_not_slower_than_scalar() {
    // The v4 `batched` entry: the frontier engine ran the same search
    // (identical tallies and campaign TableMarks are asserted inside
    // `solver_bench` before the file is written — the flags record that)
    // and was measurably faster than the scalar session on the snapshot.
    let json = snapshot();
    let batched = &json[json.find("\"batched\"").expect("batched entry")..];
    assert!(number(batched, "batch_width") >= 2.0);
    let wall = number(batched, "wall_ms");
    let session = number(batched, "session_wall_ms");
    assert!(wall > 0.0 && session > 0.0);
    assert!(
        wall <= session,
        "batched regressed below the scalar session on the snapshot: \
         {wall:.0} ms vs {session:.0} ms"
    );
    assert!(number(batched, "speedup_vs_session") >= 1.05);
    assert_eq!(field(batched, "marks_identical"), "true");
    assert_eq!(field(batched, "tallies_identical"), "true");
}

#[test]
fn snapshot_service_entry_pins_the_warm_cache_contract() {
    // The v7 `service` entry: the pinned 45-pair extended matrix asked of
    // an in-process xcv-serve daemon cold, then warm. The warm repeat must
    // be served entirely from the result cache — every applicable pair
    // cached, zero tape compilations — with marks asserted identical to an
    // in-process campaign inside the binary before the file is written
    // (the `marks_identical` flag records that). The speedup floor is the
    // service's reason to exist; the measured point at pinning time was
    // ~250x (cold ~22 s, warm ~90 ms).
    let json = snapshot();
    let service = &json[json.find("\"service\"").expect("service entry")..];
    assert_eq!(number(service, "pairs"), 49.0);
    assert_eq!(number(service, "applicable"), 45.0);
    assert_eq!(number(service, "cached_warm"), 45.0);
    assert_eq!(field(service, "marks_identical"), "true");
    assert_eq!(number(service, "compile_count_delta_warm"), 0.0);
    let cold = number(service, "cold_wall_ms");
    let warm = number(service, "warm_wall_ms");
    assert!(cold > 0.0 && warm > 0.0);
    assert!(
        number(service, "speedup") >= 5.0,
        "warm service repeat lost its speedup: cold {cold:.0} ms, warm {warm:.1} ms"
    );
}
