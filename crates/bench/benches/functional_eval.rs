//! B-substrate: evaluation throughput of the functional implementations —
//! closed-form scalar code vs memoized DAG walk vs compiled tape, plus
//! symbolic differentiation cost (the encoder's one-time work).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xcv_expr::Tape;
use xcv_functionals::{Dfa, Functional, RS};

fn bench_eval_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_eval");
    for dfa in [Dfa::Pbe, Dfa::Lyp, Dfa::Scan] {
        let expr = dfa.eps_c_expr();
        let tape = Tape::compile(&expr);
        let mut scratch = tape.scratch();
        let p = [1.3_f64, 0.7, 0.9];
        g.bench_function(format!("{dfa}_scalar"), |b| {
            b.iter(|| black_box(dfa.eps_c(black_box(1.3), 0.7, 0.9)))
        });
        g.bench_function(format!("{dfa}_dag"), |b| {
            b.iter(|| black_box(expr.eval(black_box(&p)).unwrap()))
        });
        g.bench_function(format!("{dfa}_tape"), |b| {
            b.iter(|| black_box(tape.eval(black_box(&p), &mut scratch)))
        });
    }
    g.finish();
}

fn bench_symbolic_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("symbolic_diff");
    g.sample_size(20);
    for dfa in [Dfa::Pbe, Dfa::Scan] {
        g.bench_function(format!("{dfa}_d_drs"), |b| {
            b.iter(|| {
                let fc = black_box(dfa.f_c_expr());
                black_box(fc.diff(RS))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eval_paths, bench_symbolic_diff);
criterion_main!(benches);
