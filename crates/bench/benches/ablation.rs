//! B-ablate: design-choice ablations called out in DESIGN.md —
//! domain-splitting on/off, HC4 contraction rounds, sequential vs rayon
//! recursion.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xcv_conditions::Condition;
use xcv_core::{Encoder, Verifier, VerifierConfig};
use xcv_functionals::Dfa;
use xcv_solver::{contract::Hc4, BoxDomain, DeltaSolver, SolveBudget};

/// Domain splitting on/off: with splitting disabled the verifier makes a
/// single solver call on the whole domain (the paper reports dReal timing out
/// on most whole-domain formulas — the motivation for Algorithm 1's split).
fn bench_domain_splitting(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_domain_split");
    g.sample_size(10);
    let problem = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
    let budget = SolveBudget {
        max_nodes: 3_000,
        max_millis: 100,
    };
    let with_split = Verifier::new(VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, budget),
        parallel: false,
        parallel_depth: 3,
        max_depth: 4,
        pair_deadline_ms: None,
    });
    let no_split = Verifier::new(VerifierConfig {
        split_threshold: f64::INFINITY, // never split
        solver: DeltaSolver::new(1e-3, budget),
        parallel: false,
        parallel_depth: 3,
        max_depth: 0,
        pair_deadline_ms: None,
    });
    g.bench_function("split_on", |b| {
        b.iter(|| black_box(with_split.verify(&problem)))
    });
    g.bench_function("split_off", |b| {
        b.iter(|| black_box(no_split.verify(&problem)))
    });
    g.finish();
}

/// HC4 rounds per contraction call: 1 vs 3 (more propagation per box vs more
/// boxes).
fn bench_hc4_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hc4_rounds");
    let problem = Encoder::encode(Dfa::Pbe, Condition::EcNonPositivity).unwrap();
    let b0 = BoxDomain::from_bounds(&[(1.0, 3.0), (0.0, 2.0)]);
    for rounds in [1usize, 3, 6] {
        g.bench_function(format!("rounds_{rounds}"), |b| {
            b.iter(|| {
                let mut hc4 = Hc4::new(black_box(problem.negation()));
                hc4.max_rounds = rounds;
                black_box(hc4.contract(black_box(&b0)))
            })
        });
    }
    g.finish();
}

/// Sequential vs rayon-parallel recursion over sub-boxes.
fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parallel");
    g.sample_size(10);
    let problem = Encoder::encode(Dfa::Pbe, Condition::ConjTcUpperBound).unwrap();
    for (name, parallel) in [("sequential", false), ("rayon", true)] {
        let v = Verifier::new(VerifierConfig {
            split_threshold: 0.6,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(800)),
            parallel,
            parallel_depth: 3,
            max_depth: 4,
            pair_deadline_ms: None,
        });
        g.bench_function(name, |b| b.iter(|| black_box(v.verify(&problem))));
    }
    g.finish();
}

/// HC4 alone vs HC4 + mean-value-form pruning (the solver's optional second
/// contractor).
fn bench_mean_value(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mean_value");
    g.sample_size(10);
    let problem = Encoder::encode(Dfa::Pbe, Condition::EcNonPositivity).unwrap();
    // A sub-domain away from the ε_c → 0 margins so both variants decide.
    let dom = BoxDomain::from_bounds(&[(1.0, 5.0), (0.0, 2.0)]);
    for (name, mv) in [("hc4_only", false), ("hc4_plus_mv", true)] {
        let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(400_000)).with_mean_value(mv);
        g.bench_function(name, |b| {
            b.iter(|| black_box(solver.solve(black_box(&dom), problem.negation())))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_domain_splitting,
    bench_hc4_rounds,
    bench_parallel,
    bench_mean_value
);
criterion_main!(benches);
