//! Compile-once session vs per-box alternatives on a fixed sub-box schedule
//! (the micro version of the `solver_bench` binary, for quick regressions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xcv_bench::seed_baseline::seed_solve_with_stats;
use xcv_conditions::Condition;
use xcv_core::Encoder;
use xcv_functionals::Dfa;
use xcv_solver::{DeltaSolver, SolveBudget, SolveScratch};

fn bench_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_session");
    g.sample_size(10);
    let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(300));
    for (dfa, cond, name) in [
        (Dfa::Lyp, Condition::EcNonPositivity, "lyp_ec1"),
        (Dfa::Scan, Condition::EcNonPositivity, "scan_ec1"),
    ] {
        let problem = Encoder::encode(dfa, cond).expect("applicable");
        let boxes: Vec<_> = problem
            .domain
            .split_all()
            .iter()
            .flat_map(|b| b.split_all())
            .collect();
        g.bench_function(format!("{name}/session"), |b| {
            let mut scratch = SolveScratch::new();
            b.iter(|| {
                for bx in &boxes {
                    black_box(solver.solve_compiled(bx, problem.compiled(), &mut scratch));
                }
            })
        });
        g.bench_function(format!("{name}/recompile"), |b| {
            b.iter(|| {
                for bx in &boxes {
                    black_box(solver.solve(bx, problem.negation()));
                }
            })
        });
        g.bench_function(format!("{name}/seed"), |b| {
            b.iter(|| {
                for bx in &boxes {
                    black_box(seed_solve_with_stats(&solver, bx, problem.negation()));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
