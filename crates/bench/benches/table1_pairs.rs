//! B-solver: timing of verification runs per DFA-condition pair (the
//! workload behind Table I), at a reduced budget so Criterion iterations are
//! tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xcv_bench::repro_verifier;
use xcv_conditions::Condition;
use xcv_core::Encoder;
use xcv_functionals::Dfa;

fn bench_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_pairs");
    g.sample_size(10);
    let cases = [
        (Dfa::VwnRpa, Condition::EcNonPositivity, "vwn_ec1"),
        (Dfa::VwnRpa, Condition::EcScaling, "vwn_ec2"),
        (Dfa::Pbe, Condition::EcNonPositivity, "pbe_ec1"),
        (Dfa::Pbe, Condition::LiebOxfordExt, "pbe_lo_ext"),
        (Dfa::Pbe, Condition::ConjTcUpperBound, "pbe_conj_tc"),
        (Dfa::Lyp, Condition::EcNonPositivity, "lyp_ec1"),
        (Dfa::Lyp, Condition::EcScaling, "lyp_ec2"),
        (Dfa::Am05, Condition::EcNonPositivity, "am05_ec1"),
        (Dfa::Scan, Condition::EcNonPositivity, "scan_ec1"),
    ];
    for (dfa, cond, name) in cases {
        let problem = Encoder::encode(dfa, cond).expect("applicable");
        let verifier = repro_verifier(25, 1.25, 2);
        g.bench_function(name, |b| {
            b.iter(|| black_box(verifier.verify(black_box(&problem))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pairs);
criterion_main!(benches);
