//! B-substrate: throughput of the interval-arithmetic kernel operations the
//! solver spends its time in.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xcv_interval::Interval;

fn bench_ring_ops(c: &mut Criterion) {
    let a = Interval::new(0.3, 1.7);
    let b = Interval::new(-2.1, 0.4);
    c.bench_function("interval_add", |x| {
        x.iter(|| black_box(a).add(&black_box(b)))
    });
    c.bench_function("interval_mul", |x| {
        x.iter(|| black_box(a).mul(&black_box(b)))
    });
    c.bench_function("interval_div", |x| {
        x.iter(|| black_box(a).div(&black_box(Interval::new(0.5, 2.0))))
    });
    c.bench_function("interval_powi4", |x| x.iter(|| black_box(a).powi(4)));
}

fn bench_transcendental(c: &mut Criterion) {
    let a = Interval::new(0.3, 1.7);
    c.bench_function("interval_exp", |x| x.iter(|| black_box(a).exp()));
    c.bench_function("interval_ln", |x| x.iter(|| black_box(a).ln()));
    c.bench_function("interval_atan", |x| x.iter(|| black_box(a).atan()));
    c.bench_function("interval_lambert_w", |x| {
        x.iter(|| black_box(a).lambert_w0())
    });
}

criterion_group!(benches, bench_ring_ops, bench_transcendental);
criterion_main!(benches);
