//! B-substrate: PB grid-search scaling in grid resolution (the paper uses
//! 10⁵ samples per axis; the sweep shows the cost is quadratic in the
//! per-axis resolution while conclusions stabilize far earlier).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xcv_conditions::Condition;
use xcv_functionals::Dfa;
use xcv_grid::{pb_check, GridConfig};

fn bench_grid_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_scaling");
    g.sample_size(10);
    for n in [64usize, 128, 256, 512] {
        let cfg = GridConfig {
            n_rs: n,
            n_s: n,
            n_alpha: 3,
            n_zeta: 2,
            tol: 1e-9,
        };
        g.bench_with_input(BenchmarkId::new("lyp_ec1", n), &cfg, |b, cfg| {
            b.iter(|| black_box(pb_check(Dfa::Lyp, Condition::EcNonPositivity, cfg)))
        });
    }
    // The derivative-heavy condition at one resolution, per DFA.
    let cfg = GridConfig {
        n_rs: 128,
        n_s: 128,
        n_alpha: 3,
        n_zeta: 2,
        tol: 1e-9,
    };
    for dfa in [Dfa::Pbe, Dfa::Lyp, Dfa::Am05, Dfa::Scan, Dfa::VwnRpa] {
        g.bench_with_input(
            BenchmarkId::new("tc_bound", format!("{dfa}")),
            &dfa,
            |b, &dfa| b.iter(|| black_box(pb_check(dfa, Condition::TcUpperBound, &cfg))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_grid_resolution);
criterion_main!(benches);
