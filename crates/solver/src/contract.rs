//! HC4-revise: forward–backward interval constraint propagation over the
//! shared expression DAG.
//!
//! Forward pass: natural interval extension of every node given the current
//! box. Root constraint: meet each atom's enclosure with the relation's
//! allowed set. Backward pass: walk nodes in reverse topological order and
//! contract each child's enclosure through the inverse of the node's
//! operation. Variable enclosures at the end are the contracted box.
//!
//! Soundness: every rule below computes a *superset* of the child values
//! consistent with the parent's current enclosure, so no real solution inside
//! the box is ever discarded. Operations without a cheap inverse (`sin`,
//! `cos`, parts of `pow`) simply do not contract — a no-op is always sound.

use crate::boxdom::BoxDomain;
use crate::formula::Formula;
use xcv_expr::{Expr, IntervalEnv, Kind};
use xcv_interval::{round, Interval};

/// Outcome of a contraction.
#[derive(Debug, Clone, PartialEq)]
pub enum Contraction {
    /// The box was proven to contain no solution of the formula.
    Empty,
    /// The (possibly) narrowed box.
    Box(BoxDomain),
}

/// Node operation with pre-resolved child indices (avoids hash lookups in the
/// hot backward loop).
#[derive(Clone, Copy, Debug)]
enum Op {
    Leaf,
    Var,
    Add(u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Neg(u32),
    PowI(u32, i32),
    Pow(u32, u32),
    Exp(u32),
    Ln(u32),
    Sqrt(u32),
    Cbrt(u32),
    Atan(u32),
    Sin,
    Cos,
    Tanh(u32),
    Abs(u32),
    Min(u32, u32),
    Max(u32, u32),
    LambertW(u32),
    Ite(u32, u32, u32),
}

/// A reusable HC4 contractor for a fixed formula.
pub struct Hc4 {
    env: IntervalEnv,
    ops: Vec<Op>,
    /// (node index, allowed set) per atom.
    roots: Vec<(usize, Interval)>,
    /// (node index, variable id) for every variable node.
    var_slots: Vec<(usize, u32)>,
    /// Number of forward/backward rounds per contraction call.
    pub max_rounds: usize,
}

impl Hc4 {
    /// Build a contractor for a conjunction of atoms.
    pub fn new(formula: &Formula) -> Hc4 {
        let roots_exprs: Vec<Expr> = formula.atoms.iter().map(|a| a.expr.clone()).collect();
        let env = IntervalEnv::new(&roots_exprs);
        let idx = |e: &Expr| env.index_of(e).expect("node in env") as u32;
        let mut ops = Vec::with_capacity(env.len());
        let mut var_slots = Vec::new();
        for (i, e) in env.order().iter().enumerate() {
            let op = match e.kind() {
                Kind::Const(_) => Op::Leaf,
                Kind::Var(v) => {
                    var_slots.push((i, *v));
                    Op::Var
                }
                Kind::Add(a, b) => Op::Add(idx(a), idx(b)),
                Kind::Mul(a, b) => Op::Mul(idx(a), idx(b)),
                Kind::Div(a, b) => Op::Div(idx(a), idx(b)),
                Kind::Neg(a) => Op::Neg(idx(a)),
                Kind::PowI(a, n) => Op::PowI(idx(a), *n),
                Kind::Pow(a, b) => Op::Pow(idx(a), idx(b)),
                Kind::Exp(a) => Op::Exp(idx(a)),
                Kind::Ln(a) => Op::Ln(idx(a)),
                Kind::Sqrt(a) => Op::Sqrt(idx(a)),
                Kind::Cbrt(a) => Op::Cbrt(idx(a)),
                Kind::Atan(a) => Op::Atan(idx(a)),
                Kind::Sin(_) => Op::Sin,
                Kind::Cos(_) => Op::Cos,
                Kind::Tanh(a) => Op::Tanh(idx(a)),
                Kind::Abs(a) => Op::Abs(idx(a)),
                Kind::Min(a, b) => Op::Min(idx(a), idx(b)),
                Kind::Max(a, b) => Op::Max(idx(a), idx(b)),
                Kind::LambertW(a) => Op::LambertW(idx(a)),
                Kind::Ite {
                    cond,
                    then,
                    otherwise,
                } => Op::Ite(idx(cond), idx(then), idx(otherwise)),
            };
            ops.push(op);
        }
        let roots = formula
            .atoms
            .iter()
            .map(|a| (env.index_of(&a.expr).expect("root in env"), a.rel.allowed()))
            .collect();
        Hc4 {
            env,
            ops,
            roots,
            var_slots,
            max_rounds: 3,
        }
    }

    /// Contract `b` against the formula.
    pub fn contract(&mut self, b: &BoxDomain) -> Contraction {
        self.env.forward(b.dims());
        let mut current = b.clone();
        for round in 0..self.max_rounds {
            if round > 0 {
                // Re-tighten parents from the narrowed children.
                self.env.forward_meet();
            }
            // Impose root constraints.
            for &(idx, allowed) in &self.roots {
                if self.env.meet_at(idx, allowed).is_empty() {
                    return Contraction::Empty;
                }
            }
            // Backward sweep.
            if !self.backward() {
                return Contraction::Empty;
            }
            // Extract variable domains. Variables beyond the box's dimension
            // (possible with malformed formulas) read as ENTIRE and are not
            // contracted.
            let mut next = current.clone();
            for &(idx, v) in &self.var_slots {
                if (v as usize) >= current.ndim() {
                    continue;
                }
                let dom = self.env.value_at(idx);
                let met = dom.intersect(&current.dim(v as usize));
                if met.is_empty() {
                    return Contraction::Empty;
                }
                next.set_dim(v as usize, met);
            }
            let gain = improvement(&current, &next);
            current = next;
            if gain < 0.05 {
                break;
            }
        }
        Contraction::Box(current)
    }

    /// One reverse-topological backward sweep. Returns false on proven
    /// emptiness.
    fn backward(&mut self) -> bool {
        for i in (0..self.ops.len()).rev() {
            let d = self.env.value_at(i);
            if d.is_empty() {
                return false;
            }
            let op = self.ops[i];
            match op {
                Op::Leaf | Op::Var => {}
                Op::Add(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    if !self.meet(a, d.sub(&cb)) || !self.meet(b, d.sub(&ca)) {
                        return false;
                    }
                }
                Op::Mul(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    if !self.meet(a, d.div(&cb)) || !self.meet(b, d.div(&ca)) {
                        return false;
                    }
                }
                Op::Div(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    if !self.meet(a, d.mul(&cb)) || !self.meet(b, ca.div(&d)) {
                        return false;
                    }
                }
                Op::Neg(a) => {
                    if !self.meet(a, d.neg()) {
                        return false;
                    }
                }
                Op::PowI(a, n) => {
                    if !self.backward_powi(a, n, d) {
                        return false;
                    }
                }
                Op::Pow(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    // a^b with a > 0 implies node > 0.
                    if ca.certainly_gt(0.0) {
                        let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                        if dpos.is_empty() {
                            return false;
                        }
                        let ld = dpos.ln();
                        if !ld.is_empty() {
                            let la = ca.ln();
                            if !self.meet(a, ld.div(&cb).exp()) {
                                return false;
                            }
                            if !la.is_empty() && !self.meet(b, ld.div(&la)) {
                                return false;
                            }
                        }
                    }
                }
                Op::Exp(a) => {
                    // exp(a) = d  =>  a = ln(d); d.hi <= 0 is infeasible.
                    let pre = d.ln();
                    if pre.is_empty() || !self.meet(a, pre) {
                        return false;
                    }
                }
                Op::Ln(a) => {
                    if !self.meet(a, d.exp()) {
                        return false;
                    }
                }
                Op::Sqrt(a) => {
                    let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                    if dpos.is_empty() {
                        return false;
                    }
                    if !self.meet(a, dpos.powi(2)) {
                        return false;
                    }
                }
                Op::Cbrt(a) => {
                    if !self.meet(a, d.powi(3)) {
                        return false;
                    }
                }
                Op::Atan(a) => {
                    let range =
                        Interval::new(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
                    let dc = d.intersect(&range);
                    if dc.is_empty() {
                        return false;
                    }
                    // tan blows up approaching ±π/2; treat anything within
                    // 1e-4 of the pole as unbounded.
                    let near_pole = std::f64::consts::FRAC_PI_2 - 1e-4;
                    let lo = if dc.lo <= -near_pole {
                        f64::NEG_INFINITY
                    } else {
                        round::libm_lo(dc.lo.tan())
                    };
                    let hi = if dc.hi >= near_pole {
                        f64::INFINITY
                    } else {
                        round::libm_hi(dc.hi.tan())
                    };
                    if !self.meet(a, Interval::checked(lo, hi)) {
                        return false;
                    }
                }
                Op::Sin | Op::Cos => {
                    // Periodic inverse: no contraction (sound no-op), but an
                    // enclosure disjoint from [-1, 1] is infeasible.
                    if d.intersect(&Interval::new(-1.0, 1.0)).is_empty() {
                        return false;
                    }
                }
                Op::Tanh(a) => {
                    let dc = d.intersect(&Interval::new(-1.0, 1.0));
                    if dc.is_empty() {
                        return false;
                    }
                    let atanh = |x: f64, up: bool| -> f64 {
                        if x <= -1.0 {
                            f64::NEG_INFINITY
                        } else if x >= 1.0 {
                            f64::INFINITY
                        } else {
                            let v = 0.5 * ((1.0 + x) / (1.0 - x)).ln();
                            if up {
                                round::libm_hi(v)
                            } else {
                                round::libm_lo(v)
                            }
                        }
                    };
                    if !self.meet(
                        a,
                        Interval::checked(atanh(dc.lo, false), atanh(dc.hi, true)),
                    ) {
                        return false;
                    }
                }
                Op::Abs(a) => {
                    let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                    if dpos.is_empty() {
                        return false;
                    }
                    let ca = self.val(a);
                    let pre = ca.intersect(&dpos).hull(&ca.intersect(&dpos.neg()));
                    if pre.is_empty() {
                        return false;
                    }
                    self.env.set_value_at(a as usize, pre);
                }
                Op::Min(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    // Both operands are >= min's lower bound.
                    let floor = Interval::new(d.lo, f64::INFINITY);
                    let mut na = ca.intersect(&floor);
                    let mut nb = cb.intersect(&floor);
                    // If one operand is certainly above the node's range, the
                    // other must equal the node.
                    if cb.lo > d.hi {
                        na = na.intersect(&d);
                    }
                    if ca.lo > d.hi {
                        nb = nb.intersect(&d);
                    }
                    if na.is_empty() || nb.is_empty() {
                        return false;
                    }
                    self.env.set_value_at(a as usize, na);
                    self.env.set_value_at(b as usize, nb);
                }
                Op::Max(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    let ceil = Interval::new(f64::NEG_INFINITY, d.hi);
                    let mut na = ca.intersect(&ceil);
                    let mut nb = cb.intersect(&ceil);
                    if cb.hi < d.lo {
                        na = na.intersect(&d);
                    }
                    if ca.hi < d.lo {
                        nb = nb.intersect(&d);
                    }
                    if na.is_empty() || nb.is_empty() {
                        return false;
                    }
                    self.env.set_value_at(a as usize, na);
                    self.env.set_value_at(b as usize, nb);
                }
                Op::LambertW(a) => {
                    // W(a) = d  =>  a = d e^d (monotone on our domain).
                    if !self.meet(a, d.mul(&d.exp())) {
                        return false;
                    }
                }
                Op::Ite(c, t, e) => {
                    let cc = self.val(c);
                    if cc.certainly_ge(0.0) {
                        if !self.meet(t, d) {
                            return false;
                        }
                    } else if cc.certainly_lt(0.0) {
                        if !self.meet(e, d) {
                            return false;
                        }
                    } else {
                        let ct = self.val(t);
                        let ce = self.val(e);
                        let then_possible = !ct.intersect(&d).is_empty();
                        let else_possible = !ce.intersect(&d).is_empty();
                        match (then_possible, else_possible) {
                            (false, false) => return false,
                            (false, true) => {
                                // cond must be negative; closed meet is sound.
                                if !self.meet(c, Interval::new(f64::NEG_INFINITY, 0.0))
                                    || !self.meet(e, d)
                                {
                                    return false;
                                }
                            }
                            (true, false) => {
                                if !self.meet(c, Interval::new(0.0, f64::INFINITY))
                                    || !self.meet(t, d)
                                {
                                    return false;
                                }
                            }
                            (true, true) => {}
                        }
                    }
                }
            }
        }
        true
    }

    #[inline]
    fn val(&self, idx: u32) -> Interval {
        self.env.value_at(idx as usize)
    }

    /// Meet the child's enclosure with `narrow`; false if proven empty.
    #[inline]
    fn meet(&mut self, idx: u32, narrow: Interval) -> bool {
        !self.env.meet_at(idx as usize, narrow).is_empty()
    }

    fn backward_powi(&mut self, a: u32, n: i32, d: Interval) -> bool {
        if n == 0 {
            return !d.intersect(&Interval::ONE).is_empty();
        }
        if n < 0 {
            // a^n = 1/a^{-n}: invert the target and recurse on the positive
            // exponent.
            let dinv = d.recip();
            return self.backward_powi(a, -n, dinv);
        }
        if n % 2 == 1 {
            self.meet(a, d.nth_root(n))
        } else {
            let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
            if dpos.is_empty() {
                return false;
            }
            let r = dpos.nth_root(n); // [p, q], p >= 0
            let ca = self.val(a);
            let pre = ca.intersect(&r).hull(&ca.intersect(&r.neg()));
            if pre.is_empty() {
                return false;
            }
            self.env.set_value_at(a as usize, pre);
            true
        }
    }
}

/// Relative contraction gain between two boxes (max over dimensions).
fn improvement(before: &BoxDomain, after: &BoxDomain) -> f64 {
    let mut best: f64 = 0.0;
    for i in 0..before.ndim() {
        let wb = before.dim(i).width();
        let wa = after.dim(i).width();
        if wb > 0.0 && wb.is_finite() {
            best = best.max((wb - wa) / wb);
        } else if wb.is_infinite() && wa.is_finite() {
            best = 1.0;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, Formula, Rel};
    use xcv_expr::{constant, var};

    fn contract_once(f: &Formula, b: &BoxDomain) -> Contraction {
        Hc4::new(f).contract(b)
    }

    #[test]
    fn linear_constraint_contracts() {
        // x - 3 <= 0 on x in [0, 10]  =>  x in [0, 3].
        let f = Formula::single(Atom::new(var(0) - 3.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(0.0, 10.0)]);
        match contract_once(&f, &b) {
            Contraction::Box(nb) => {
                assert!(nb.dim(0).hi <= 3.0 + 1e-9);
                assert!(nb.dim(0).lo <= 0.0 + 1e-12);
            }
            Contraction::Empty => panic!("should not be empty"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x >= 0 and x + 1 <= 0 on [0, 5] is empty.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Ge),
            Atom::new(var(0) + 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 5.0)]);
        assert_eq!(contract_once(&f, &b), Contraction::Empty);
    }

    #[test]
    fn quadratic_preimage_both_signs() {
        // x^2 - 4 <= 0 on [-10, 10]  =>  x in [-2, 2].
        let f = Formula::single(Atom::new(var(0).powi(2) - 4.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= -2.0 - 1e-9 && nb.dim(0).hi <= 2.0 + 1e-9);
    }

    #[test]
    fn exp_inverse_contracts() {
        // exp(x) <= 1  =>  x <= 0.
        let f = Formula::single(Atom::new(var(0).exp() - 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).hi <= 1e-9);
    }

    #[test]
    fn ln_inverse_contracts() {
        // ln(x) >= 0  =>  x >= 1.
        let f = Formula::single(Atom::new(var(0).ln(), Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.01, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 1.0 - 1e-9);
    }

    #[test]
    fn multivariate_propagation() {
        // x + y <= 0, x >= 4 on [0,10]x[-10,10]  =>  y <= -4.
        let f = Formula::new(vec![
            Atom::new(var(0) + var(1), Rel::Le),
            Atom::new(var(0) - 4.0, Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 10.0), (-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 4.0 - 1e-9);
        assert!(nb.dim(1).hi <= -4.0 + 1e-6);
    }

    #[test]
    fn contraction_never_loses_solutions() {
        // Property sampled deterministically: for the constraint
        // x^2 + y^2 - 1 <= 0, every feasible grid point survives contraction.
        let f = Formula::single(Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        for i in 0..20 {
            for j in 0..20 {
                let x = -2.0 + 4.0 * (i as f64) / 19.0;
                let y = -2.0 + 4.0 * (j as f64) / 19.0;
                if x * x + y * y <= 1.0 {
                    assert!(nb.contains_point(&[x, y]), "lost feasible point ({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn ite_branch_pruning() {
        // ite(x >= 0, 1, -1) >= 0 forces x >= 0 — the then-branch value 1 is
        // feasible, the else value -1 is not.
        let e = xcv_expr::Expr::ite(&var(0), &constant(1.0), &constant(-1.0));
        let f = Formula::single(Atom::new(e, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= -1e-9);
    }

    #[test]
    fn div_backward() {
        // 1/x <= 0.5 with x in [0.1, 100]  =>  x >= 2.
        let f = Formula::single(Atom::new(constant(1.0) / var(0) - 0.5, Rel::Le));
        let b = BoxDomain::from_bounds(&[(0.1, 100.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 2.0 - 1e-6, "{:?}", nb.dim(0));
    }

    #[test]
    fn sqrt_backward() {
        // sqrt(x) >= 2  =>  x >= 4.
        let f = Formula::single(Atom::new(var(0).sqrt() - 2.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 100.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 4.0 - 1e-6);
    }

    #[test]
    fn abs_backward_two_sided() {
        // |x| <= 1  =>  x in [-1, 1].
        let f = Formula::single(Atom::new(var(0).abs() - 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= -1.0 - 1e-9 && nb.dim(0).hi <= 1.0 + 1e-9);
    }

    #[test]
    fn atan_backward() {
        // atan(x) >= pi/4  =>  x >= 1.
        let f = Formula::single(Atom::new(
            var(0).atan() - std::f64::consts::FRAC_PI_4,
            Rel::Ge,
        ));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 1.0 - 1e-6);
    }

    #[test]
    fn lambert_backward() {
        // W(x) >= 1  =>  x >= e.
        let f = Formula::single(Atom::new(var(0).lambert_w() - 1.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 100.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= std::f64::consts::E - 1e-6);
    }

    #[test]
    fn tanh_backward() {
        // tanh(x) >= 0.5  =>  x >= atanh(0.5) ≈ 0.5493.
        let f = Formula::single(Atom::new(var(0).tanh() - 0.5, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 0.549 - 1e-3);
    }

    #[test]
    fn sin_infeasible_range() {
        // sin(x) >= 2 is infeasible.
        let f = Formula::single(Atom::new(var(0).sin() - 2.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 10.0)]);
        assert_eq!(contract_once(&f, &b), Contraction::Empty);
    }

    #[test]
    fn negative_powi_backward() {
        // x^-2 >= 4  =>  |x| <= 0.5.
        let f = Formula::single(Atom::new(var(0).powi(-2) - 4.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.01, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).hi <= 0.5 + 1e-6, "{:?}", nb.dim(0));
    }
}
