//! HC4-revise: forward–backward interval constraint propagation.
//!
//! Forward pass: natural interval extension of every node given the current
//! box. Root constraint: meet each atom's enclosure with the relation's
//! allowed set. Backward pass: walk nodes in reverse topological order and
//! contract each child's enclosure through the inverse of the node's
//! operation. Variable enclosures at the end are the contracted box.
//!
//! The actual pass machinery lives in [`xcv_expr::IntervalTape`] (flat
//! slot-file program) and [`crate::CompiledFormula`] (per-formula roots and
//! allowed sets). [`Hc4`] is the owning convenience wrapper: it compiles the
//! formula and carries its own scratch, for callers that contract one
//! formula in place. Hot paths — the δ-solver, the verifier recursion —
//! share one [`crate::CompiledFormula`] and per-worker scratch instead of
//! constructing an `Hc4` per box.
//!
//! Soundness: every backward rule computes a *superset* of the child values
//! consistent with the parent's current enclosure, so no real solution inside
//! the box is ever discarded. Operations without a cheap inverse (`sin`,
//! `cos`, parts of `pow`) simply do not contract — a no-op is always sound.

use crate::boxdom::BoxDomain;
use crate::compile::{CompiledFormula, SolveScratch};
use crate::formula::Formula;

/// Outcome of a contraction.
#[derive(Debug, Clone, PartialEq)]
pub enum Contraction {
    /// The box was proven to contain no solution of the formula.
    Empty,
    /// The (possibly) narrowed box.
    Box(BoxDomain),
}

/// A self-contained HC4 contractor for a fixed formula: compiled program +
/// private scratch in one value.
pub struct Hc4 {
    compiled: CompiledFormula,
    scratch: SolveScratch,
    /// Number of forward/backward rounds per contraction call.
    pub max_rounds: usize,
}

impl Hc4 {
    /// Compile a contractor for a conjunction of atoms.
    pub fn new(formula: &Formula) -> Hc4 {
        Hc4 {
            compiled: CompiledFormula::compile(formula),
            scratch: SolveScratch::new(),
            max_rounds: 3,
        }
    }

    /// Contract `b` against the formula.
    pub fn contract(&mut self, b: &BoxDomain) -> Contraction {
        self.compiled
            .contract_with_rounds(b, &mut self.scratch, self.max_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, Formula, Rel};
    use xcv_expr::{constant, var};

    fn contract_once(f: &Formula, b: &BoxDomain) -> Contraction {
        Hc4::new(f).contract(b)
    }

    #[test]
    fn linear_constraint_contracts() {
        // x - 3 <= 0 on x in [0, 10]  =>  x in [0, 3].
        let f = Formula::single(Atom::new(var(0) - 3.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(0.0, 10.0)]);
        match contract_once(&f, &b) {
            Contraction::Box(nb) => {
                assert!(nb.dim(0).hi <= 3.0 + 1e-9);
                assert!(nb.dim(0).lo <= 0.0 + 1e-12);
            }
            Contraction::Empty => panic!("should not be empty"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x >= 0 and x + 1 <= 0 on [0, 5] is empty.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Ge),
            Atom::new(var(0) + 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 5.0)]);
        assert_eq!(contract_once(&f, &b), Contraction::Empty);
    }

    #[test]
    fn quadratic_preimage_both_signs() {
        // x^2 - 4 <= 0 on [-10, 10]  =>  x in [-2, 2].
        let f = Formula::single(Atom::new(var(0).powi(2) - 4.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= -2.0 - 1e-9 && nb.dim(0).hi <= 2.0 + 1e-9);
    }

    #[test]
    fn exp_inverse_contracts() {
        // exp(x) <= 1  =>  x <= 0.
        let f = Formula::single(Atom::new(var(0).exp() - 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).hi <= 1e-9);
    }

    #[test]
    fn ln_inverse_contracts() {
        // ln(x) >= 0  =>  x >= 1.
        let f = Formula::single(Atom::new(var(0).ln(), Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.01, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 1.0 - 1e-9);
    }

    #[test]
    fn multivariate_propagation() {
        // x + y <= 0, x >= 4 on [0,10]x[-10,10]  =>  y <= -4.
        let f = Formula::new(vec![
            Atom::new(var(0) + var(1), Rel::Le),
            Atom::new(var(0) - 4.0, Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 10.0), (-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 4.0 - 1e-9);
        assert!(nb.dim(1).hi <= -4.0 + 1e-6);
    }

    #[test]
    fn contraction_never_loses_solutions() {
        // Property sampled deterministically: for the constraint
        // x^2 + y^2 - 1 <= 0, every feasible grid point survives contraction.
        let f = Formula::single(Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        for i in 0..20 {
            for j in 0..20 {
                let x = -2.0 + 4.0 * (i as f64) / 19.0;
                let y = -2.0 + 4.0 * (j as f64) / 19.0;
                if x * x + y * y <= 1.0 {
                    assert!(nb.contains_point(&[x, y]), "lost feasible point ({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn ite_branch_pruning() {
        // ite(x >= 0, 1, -1) >= 0 forces x >= 0 — the then-branch value 1 is
        // feasible, the else value -1 is not.
        let e = xcv_expr::Expr::ite(&var(0), &constant(1.0), &constant(-1.0));
        let f = Formula::single(Atom::new(e, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= -1e-9);
    }

    #[test]
    fn div_backward() {
        // 1/x <= 0.5 with x in [0.1, 100]  =>  x >= 2.
        let f = Formula::single(Atom::new(constant(1.0) / var(0) - 0.5, Rel::Le));
        let b = BoxDomain::from_bounds(&[(0.1, 100.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 2.0 - 1e-6, "{:?}", nb.dim(0));
    }

    #[test]
    fn sqrt_backward() {
        // sqrt(x) >= 2  =>  x >= 4.
        let f = Formula::single(Atom::new(var(0).sqrt() - 2.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 100.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 4.0 - 1e-6);
    }

    #[test]
    fn abs_backward_two_sided() {
        // |x| <= 1  =>  x in [-1, 1].
        let f = Formula::single(Atom::new(var(0).abs() - 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= -1.0 - 1e-9 && nb.dim(0).hi <= 1.0 + 1e-9);
    }

    #[test]
    fn atan_backward() {
        // atan(x) >= pi/4  =>  x >= 1.
        let f = Formula::single(Atom::new(
            var(0).atan() - std::f64::consts::FRAC_PI_4,
            Rel::Ge,
        ));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 1.0 - 1e-6);
    }

    #[test]
    fn lambert_backward() {
        // W(x) >= 1  =>  x >= e.
        let f = Formula::single(Atom::new(var(0).lambert_w() - 1.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 100.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= std::f64::consts::E - 1e-6);
    }

    #[test]
    fn tanh_backward() {
        // tanh(x) >= 0.5  =>  x >= atanh(0.5) ≈ 0.5493.
        let f = Formula::single(Atom::new(var(0).tanh() - 0.5, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).lo >= 0.549 - 1e-3);
    }

    #[test]
    fn sin_infeasible_range() {
        // sin(x) >= 2 is infeasible.
        let f = Formula::single(Atom::new(var(0).sin() - 2.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 10.0)]);
        assert_eq!(contract_once(&f, &b), Contraction::Empty);
    }

    #[test]
    fn negative_powi_backward() {
        // x^-2 >= 4  =>  |x| <= 0.5.
        let f = Formula::single(Atom::new(var(0).powi(-2) - 4.0, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.01, 10.0)]);
        let Contraction::Box(nb) = contract_once(&f, &b) else {
            panic!()
        };
        assert!(nb.dim(0).hi <= 0.5 + 1e-6, "{:?}", nb.dim(0));
    }

    #[test]
    fn extra_rounds_never_hurt() {
        // max_rounds is honored: more rounds can only keep or tighten.
        let f = Formula::new(vec![
            Atom::new(var(0) + var(1), Rel::Le),
            Atom::new(var(0) - 4.0, Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 10.0), (-10.0, 10.0)]);
        let mut one = Hc4::new(&f);
        one.max_rounds = 1;
        let mut many = Hc4::new(&f);
        many.max_rounds = 6;
        match (one.contract(&b), many.contract(&b)) {
            (Contraction::Box(a), Contraction::Box(c)) => {
                for i in 0..2 {
                    assert!(c.dim(i).width() <= a.dim(i).width() + 1e-12);
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
