//! Branch-and-prune δ-complete search.
//!
//! Solving is a two-phase affair since the compile-once rework:
//! [`crate::CompiledFormula::compile`] lowers a formula to flat tapes once,
//! and [`DeltaSolver::solve_compiled`] runs the branch-and-prune loop over a
//! borrowed compiled formula plus a reusable [`SolveScratch`] — zero
//! compilation, zero allocation churn per box. The original
//! [`DeltaSolver::solve`]`(&BoxDomain, &Formula)` signature survives as a
//! thin compile-then-solve wrapper for one-shot callers and tests.

use crate::boxdom::BoxDomain;
use crate::compile::{CompiledFormula, SolveScratch};
use crate::contract::Contraction;
use crate::formula::Formula;
use std::time::Instant;

/// Result of a [`DeltaSolver::solve`] call — the same three-way interface
/// the paper's Algorithm 1 consumes from dReal.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The formula has no solution in the box (sound).
    Unsat,
    /// The δ-weakening is satisfiable; the witness point satisfies every atom
    /// within δ (it may fail the exact formula — callers re-check).
    DeltaSat(Vec<f64>),
    /// Budget exhausted before a decision.
    Timeout,
}

/// Resource limits for one solve call (the paper used a 2-hour wall-clock
/// limit per dReal invocation; a node budget gives deterministic tests).
#[derive(Debug, Clone, Copy)]
pub struct SolveBudget {
    pub max_nodes: u64,
    pub max_millis: u64,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget {
            max_nodes: 200_000,
            max_millis: 2_000,
        }
    }
}

impl SolveBudget {
    pub fn nodes(n: u64) -> Self {
        SolveBudget {
            max_nodes: n,
            max_millis: u64::MAX,
        }
    }

    pub fn millis(ms: u64) -> Self {
        SolveBudget {
            max_nodes: u64::MAX,
            max_millis: ms,
        }
    }
}

/// Search statistics, for benchmarking and ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Boxes popped from the work stack.
    pub nodes: u64,
    /// Boxes discarded by contraction.
    pub pruned: u64,
    /// Boxes split.
    pub branched: u64,
    /// Maximum depth reached.
    pub max_depth: u32,
}

impl SolveStats {
    /// Fold another run's statistics into this one (counters add, depth
    /// maxes) — used by the verifier to aggregate over a whole box tree.
    pub fn absorb(&mut self, other: SolveStats) {
        self.nodes += other.nodes;
        self.pruned += other.pruned;
        self.branched += other.branched;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// The δ-complete solver: HC4 contraction + branch-and-prune.
#[derive(Debug, Clone)]
pub struct DeltaSolver {
    /// Numerical relaxation of atom bounds (dReal's δ); also the box-width
    /// scale at which undecided boxes are declared δ-SAT.
    pub delta: f64,
    pub budget: SolveBudget,
    /// Enable the mean-value-form infeasibility test as a second pruning
    /// signal (see [`crate::meanvalue::MeanValue`]); off by default.
    pub mean_value: bool,
}

impl Default for DeltaSolver {
    fn default() -> Self {
        DeltaSolver {
            delta: 1e-3,
            budget: SolveBudget::default(),
            mean_value: false,
        }
    }
}

impl DeltaSolver {
    pub fn new(delta: f64, budget: SolveBudget) -> Self {
        DeltaSolver {
            delta,
            budget,
            mean_value: false,
        }
    }

    /// Enable or disable the mean-value pruning test.
    pub fn with_mean_value(mut self, on: bool) -> Self {
        self.mean_value = on;
        self
    }

    /// Decide `formula` over `domain` (one-shot: compiles the formula, then
    /// solves — callers visiting many boxes should compile once and use
    /// [`DeltaSolver::solve_compiled`]).
    pub fn solve(&self, domain: &BoxDomain, formula: &Formula) -> Outcome {
        self.solve_with_stats(domain, formula).0
    }

    /// Decide `formula` over `domain`, returning search statistics
    /// (one-shot; see [`DeltaSolver::solve`]).
    pub fn solve_with_stats(&self, domain: &BoxDomain, formula: &Formula) -> (Outcome, SolveStats) {
        let compiled = CompiledFormula::compile(formula);
        let mut scratch = SolveScratch::new();
        self.solve_compiled_with_stats(domain, &compiled, &mut scratch)
    }

    /// Decide the compiled formula over `domain`, reusing `scratch` — the
    /// hot path: no compilation, no topo sorts, no per-box allocation beyond
    /// box splitting.
    pub fn solve_compiled(
        &self,
        domain: &BoxDomain,
        compiled: &CompiledFormula,
        scratch: &mut SolveScratch,
    ) -> Outcome {
        self.solve_compiled_with_stats(domain, compiled, scratch).0
    }

    /// [`DeltaSolver::solve_compiled`] with search statistics.
    pub fn solve_compiled_with_stats(
        &self,
        domain: &BoxDomain,
        compiled: &CompiledFormula,
        scratch: &mut SolveScratch,
    ) -> (Outcome, SolveStats) {
        let mut stats = SolveStats::default();
        if domain.is_empty() {
            return (Outcome::Unsat, stats);
        }
        let start = Instant::now();
        scratch.stack.clear();
        scratch.stack.push((domain.clone(), 0));
        // Boxes narrower than this in every dimension are δ-decided.
        let width_floor = self.delta.max(1e-12);
        while let Some((b, depth)) = scratch.stack.pop() {
            stats.nodes += 1;
            stats.max_depth = stats.max_depth.max(depth);
            // Compare elapsed time in u128: truncating `as_millis()` to u64
            // invites silent wrap bugs (mirrors `Verifier::past_deadline`).
            if stats.nodes > self.budget.max_nodes
                || (stats.nodes % 64 == 0
                    && start.elapsed().as_millis() > u128::from(self.budget.max_millis))
            {
                return (Outcome::Timeout, stats);
            }
            let contracted = match compiled.contract(&b, scratch) {
                Contraction::Empty => {
                    stats.pruned += 1;
                    continue;
                }
                Contraction::Box(nb) => nb,
            };
            if contracted.is_empty() {
                stats.pruned += 1;
                continue;
            }
            let contracted = if self.mean_value {
                match compiled.mv_contract(&contracted, scratch) {
                    None => {
                        stats.pruned += 1;
                        continue;
                    }
                    Some(nb) if compiled.mv_certainly_infeasible(&nb, scratch) => {
                        stats.pruned += 1;
                        continue;
                    }
                    Some(nb) => nb,
                }
            } else {
                contracted
            };
            // Fast model check: an exact solution at the midpoint settles it.
            let mid = contracted.midpoint();
            if compiled.holds_at(&mid, scratch) {
                return (Outcome::DeltaSat(mid), stats);
            }
            // δ-decision on small boxes: contraction could not rule the box
            // out, so the δ-weakening is satisfiable here (dReal's semantics).
            if contracted.max_width() <= width_floor {
                return (Outcome::DeltaSat(mid), stats);
            }
            // Branch on the widest dimension; search the half whose midpoint
            // is closer to satisfying the formula first (DFS order: push it
            // last). Scoring runs on the compiled f64 tapes.
            let (l, r) = contracted.bisect_widest();
            stats.branched += 1;
            let sl = compiled.violation_score(&l.midpoint(), scratch);
            let sr = compiled.violation_score(&r.midpoint(), scratch);
            if sl <= sr {
                if !r.is_empty() {
                    scratch.stack.push((r, depth + 1));
                }
                if !l.is_empty() {
                    scratch.stack.push((l, depth + 1));
                }
            } else {
                if !l.is_empty() {
                    scratch.stack.push((l, depth + 1));
                }
                if !r.is_empty() {
                    scratch.stack.push((r, depth + 1));
                }
            }
        }
        (Outcome::Unsat, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, Rel};
    use xcv_expr::{constant, var};

    fn solver() -> DeltaSolver {
        DeltaSolver::new(1e-4, SolveBudget::nodes(200_000))
    }

    #[test]
    fn unsat_simple() {
        // x^2 + 1 <= 0 has no real solution.
        let f = Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn sat_with_exact_model() {
        // x^2 - 4 <= 0 and x - 1 >= 0: satisfiable on [1, 2].
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) - 4.0, Rel::Le),
            Atom::new(var(0) - 1.0, Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                assert!(f.holds_at(&m), "model {m:?} must satisfy exactly here");
                assert!((1.0..=2.0).contains(&m[0]));
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_transcendental() {
        // exp(x) <= 0 is unsatisfiable.
        let f = Formula::single(Atom::new(var(0).exp(), Rel::Le));
        let b = BoxDomain::from_bounds(&[(-50.0, 50.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn tight_feasible_sliver_found() {
        // | sin-free thin band: 1e-6 <= x - y <= 2e-6 inside [0,1]^2.
        let d = var(0) - var(1);
        let f = Formula::new(vec![
            Atom::new(d.clone() - 1e-6, Rel::Ge),
            Atom::new(d - 2e-6, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = DeltaSolver::new(1e-9, SolveBudget::nodes(500_000));
        match s.solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                let v = m[0] - m[1];
                assert!((1e-6 - 1e-9..=2e-6 + 1e-9).contains(&v), "v = {v}");
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn timeout_respected() {
        // A hard equality-like band with a zero node budget must time out.
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Ge),
            Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let s = DeltaSolver::new(1e-12, SolveBudget::nodes(2));
        assert_eq!(s.solve(&b, &f), Outcome::Timeout);
    }

    #[test]
    fn circle_boundary_delta_sat() {
        // The unit circle as two inequalities: only δ-solutions exist.
        let r2 = var(0).powi(2) + var(1).powi(2);
        let f = Formula::new(vec![
            Atom::new(r2.clone() - 1.0, Rel::Ge),
            Atom::new(r2 - 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let s = DeltaSolver::new(1e-3, SolveBudget::nodes(1_000_000));
        match s.solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                let r = m[0] * m[0] + m[1] * m[1];
                assert!((r - 1.0).abs() < 0.05, "model radius^2 {r}");
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn empty_domain_is_unsat() {
        let f = Formula::single(Atom::new(var(0), Rel::Ge));
        let b = BoxDomain::new(vec![xcv_interval::Interval::EMPTY]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn point_domain() {
        let f = Formula::single(Atom::new(var(0) - 2.0, Rel::Ge));
        let hit = BoxDomain::from_bounds(&[(2.0, 2.0)]);
        let miss = BoxDomain::from_bounds(&[(1.0, 1.0)]);
        assert!(matches!(solver().solve(&hit, &f), Outcome::DeltaSat(_)));
        assert_eq!(solver().solve(&miss, &f), Outcome::Unsat);
    }

    #[test]
    fn lambert_constraint_end_to_end() {
        // W(x) >= 1 and x <= 2: unsat since W(2) ≈ 0.852.
        let f = Formula::new(vec![
            Atom::new(var(0).lambert_w() - 1.0, Rel::Ge),
            Atom::new(var(0) - 2.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 100.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn ite_constraint_end_to_end() {
        // ite(x >= 0, x - 5, -x - 5) >= 0  means |x| >= 5.
        let e = xcv_expr::Expr::ite(&var(0), &(var(0) - 5.0), &(-var(0) - 5.0));
        let f = Formula::single(Atom::new(e, Rel::Ge));
        let inside = BoxDomain::from_bounds(&[(-4.0, 4.0)]);
        assert_eq!(solver().solve(&inside, &f), Outcome::Unsat);
        let outside = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        match solver().solve(&outside, &f) {
            Outcome::DeltaSat(m) => assert!(m[0].abs() >= 5.0 - 1e-3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_populated() {
        let f = Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let (out, stats) = solver().solve_with_stats(&b, &f);
        assert_eq!(out, Outcome::Unsat);
        assert!(stats.nodes >= 1);
        assert!(stats.pruned >= 1);
    }

    #[test]
    fn strict_vs_nonstrict_boundary() {
        // x >= 0 and -x >= 0 has the single solution x = 0.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Ge),
            Atom::new(-var(0), Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0)]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => assert!(m[0].abs() <= 1e-3),
            other => panic!("{other:?}"),
        }
        // Strict version x > 0 and -x > 0 — contraction alone cannot prove
        // emptiness of the closed relaxation, so a δ-SAT near 0 or Unsat are
        // both acceptable dReal-style answers; exact recheck must fail.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Gt),
            Atom::new(-var(0), Rel::Gt),
        ]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => assert!(!f.holds_at(&m)),
            Outcome::Unsat | Outcome::Timeout => {}
        }
    }

    #[test]
    fn mean_value_agrees_with_plain_on_outcomes() {
        // MV is a pruning accelerator; it must never change Unsat/Sat
        // answers, only how fast they arrive.
        let cases = [
            Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le)), // unsat
            Formula::new(vec![
                Atom::new(var(0).powi(2) - 4.0, Rel::Le),
                Atom::new(var(0) - 1.0, Rel::Ge),
            ]), // sat
        ];
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        for f in cases {
            let plain = solver().solve(&b, &f);
            let mv = solver().with_mean_value(true).solve(&b, &f);
            match (plain, mv) {
                (Outcome::Unsat, Outcome::Unsat) => {}
                (Outcome::DeltaSat(_), Outcome::DeltaSat(_)) => {}
                (p, m) => panic!("divergent outcomes: {p:?} vs {m:?}"),
            }
        }
    }

    #[test]
    fn mean_value_prunes_dependency_heavy_formula() {
        // x - x^2 >= 0.3 is unsatisfiable (max is 0.25); MV proves it with
        // far fewer nodes than the natural extension needs.
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.3, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let (out_plain, stats_plain) = solver().solve_with_stats(&b, &f);
        let (out_mv, stats_mv) = solver().with_mean_value(true).solve_with_stats(&b, &f);
        assert_eq!(out_plain, Outcome::Unsat);
        assert_eq!(out_mv, Outcome::Unsat);
        assert!(
            stats_mv.nodes <= stats_plain.nodes,
            "MV should not explore more: {} vs {}",
            stats_mv.nodes,
            stats_plain.nodes
        );
    }

    #[test]
    fn compiled_session_reuse_matches_one_shot() {
        // One compiled formula + one scratch across many boxes must agree
        // with a fresh compile-per-box solve on every box.
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) - 4.0, Rel::Le),
            Atom::new(var(0) - 1.0, Rel::Ge),
        ]);
        let s = solver();
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        for i in 0..12 {
            let lo = -6.0 + i as f64;
            let b = BoxDomain::from_bounds(&[(lo, lo + 1.5)]);
            let fresh = s.solve(&b, &f);
            let session = s.solve_compiled(&b, &compiled, &mut scratch);
            match (fresh, session) {
                (Outcome::Unsat, Outcome::Unsat) | (Outcome::Timeout, Outcome::Timeout) => {}
                (Outcome::DeltaSat(a), Outcome::DeltaSat(c)) => {
                    assert_eq!(a, c, "deterministic search must match");
                }
                (a, c) => panic!("divergent: {a:?} vs {c:?}"),
            }
        }
    }

    // The "session solving never compiles" counter assertion lives in
    // `tests/compile_once.rs` (own binary + mutex): the process-global
    // counter races with sibling unit tests compiling on parallel threads.

    #[test]
    fn compiled_mean_value_session() {
        // The MV gradients build lazily inside the compiled formula; enabling
        // mean_value on the compiled path must match the plain path.
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.3, Rel::Ge));
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let s = solver().with_mean_value(true);
        let (out, st) = s.solve_compiled_with_stats(&b, &compiled, &mut scratch);
        assert_eq!(out, Outcome::Unsat);
        let (out2, st2) = s.solve_with_stats(&b, &f);
        assert_eq!(out2, Outcome::Unsat);
        assert_eq!(st.nodes, st2.nodes);
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut a = SolveStats {
            nodes: 3,
            pruned: 1,
            branched: 2,
            max_depth: 4,
        };
        a.absorb(SolveStats {
            nodes: 5,
            pruned: 0,
            branched: 1,
            max_depth: 2,
        });
        assert_eq!((a.nodes, a.pruned, a.branched, a.max_depth), (8, 1, 3, 4));
    }

    #[test]
    fn deep_nesting_constant_formula() {
        let mut e = var(0);
        for _ in 0..30 {
            e = (e.clone() * 0.5 + 1.0).sqrt();
        }
        // e is bounded well below 3 on [0, 2]; e - 3 >= 0 must be unsat.
        let f = Formula::single(Atom::new(e - constant(3.0), Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 2.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }
}
