//! Branch-and-prune δ-complete search.
//!
//! Solving is a two-phase affair since the compile-once rework:
//! [`crate::CompiledFormula::compile`] lowers a formula to flat tapes once,
//! and [`DeltaSolver::solve_compiled`] runs the branch-and-prune loop over a
//! borrowed compiled formula plus a reusable [`SolveScratch`] — zero
//! compilation, zero allocation churn per box. The original
//! [`DeltaSolver::solve`]`(&BoxDomain, &Formula)` signature survives as a
//! thin compile-then-solve wrapper for one-shot callers and tests.
//!
//! Per box, both engines (scalar DFS and batched frontier) funnel through
//! one decision step, `step_after_contract`: HC4 contraction first, then —
//! when the [`Escalation`] ladder is on and the box stalled — rung-1
//! interval-Newton and rung-2 3B slab shaving, then the midpoint model
//! check, δ-decision, and axis-aware bisection. Keeping the ladder inside
//! the shared step is what makes scalar and batched runs bit-identical at
//! every width, and what lets one [`TraceEvent`] stream (one terminal
//! event per node, intermediates for Newton/shave) serve trace replay and
//! certificate emission alike.

use crate::boxdom::BoxDomain;
use crate::compile::{CompiledFormula, SolveScratch};
use crate::contract::Contraction;
use crate::formula::Formula;
use std::time::Instant;
use xcv_interval::Interval;

/// Result of a [`DeltaSolver::solve`] call — the same three-way interface
/// the paper's Algorithm 1 consumes from dReal.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The formula has no solution in the box (sound).
    Unsat,
    /// The δ-weakening is satisfiable; the witness point satisfies every atom
    /// within δ (it may fail the exact formula — callers re-check).
    DeltaSat(Vec<f64>),
    /// Budget exhausted before a decision.
    Timeout,
}

/// Resource limits for one solve call (the paper used a 2-hour wall-clock
/// limit per dReal invocation; a node budget gives deterministic tests).
#[derive(Debug, Clone, Copy)]
pub struct SolveBudget {
    pub max_nodes: u64,
    pub max_millis: u64,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget {
            max_nodes: 200_000,
            max_millis: 2_000,
        }
    }
}

impl SolveBudget {
    pub fn nodes(n: u64) -> Self {
        SolveBudget {
            max_nodes: n,
            max_millis: u64::MAX,
        }
    }

    pub fn millis(ms: u64) -> Self {
        SolveBudget {
            max_nodes: u64::MAX,
            max_millis: ms,
        }
    }
}

/// Search statistics, for benchmarking and ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Boxes popped from the work stack.
    pub nodes: u64,
    /// Boxes discarded by contraction.
    pub pruned: u64,
    /// Boxes split.
    pub branched: u64,
    /// Maximum depth reached.
    pub max_depth: u32,
}

impl SolveStats {
    /// Fold another run's statistics into this one (counters add, depth
    /// maxes) — used by the verifier to aggregate over a whole box tree.
    pub fn absorb(&mut self, other: SolveStats) {
        self.nodes += other.nodes;
        self.pruned += other.pruned;
        self.branched += other.branched;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

/// The contractor escalation ladder: what a *stalled* box gets instead of
/// burning its budget on bisection. Rung 0 is the always-on HC4 round
/// (plus mean-value when enabled); a box whose rung-0 contraction gain
/// falls below [`Escalation::stall_gain`] escalates to rung 1 —
/// interval-Newton (Gauss–Seidel) sweeps over the compiled gradient tapes
/// — and, still stalled, to rung 2 — 3B slab shaving at the box faces with
/// dirty-cone re-evaluation. Escalation is a pure per-box function, so the
/// scalar DFS and the batched frontier stay bit-identical at any width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Escalation {
    /// Highest rung a box may escalate to (`0` = ladder off, the default;
    /// `1` = Newton; `2` = Newton + 3B shaving).
    pub max_rung: u8,
    /// Contraction gain (relative width reduction, max over axes) below
    /// which a box counts as stalled and escalates.
    pub stall_gain: f64,
    /// Interval-Newton Gauss–Seidel sweeps per rung-1 call.
    pub newton_sweeps: usize,
    /// Relative slab width the rung-2 shaver probes at each box face.
    pub shave_frac: f64,
    /// Maximum consecutive slabs shaved per face and rung-2 call.
    pub shave_passes: u32,
    /// Deepest node (depth within one box's search tree) that may escalate.
    /// Contractions high in the tree are inherited by whole subtrees, so
    /// they carry almost all of the ladder's pruning power; deep stalled
    /// nodes are legion and each matters little, so escalating them buys
    /// timeouts back at a ruinous wall-clock price. (The sub-δ
    /// flip-prevention machinery is *not* depth-gated — soundness of the
    /// δ-decision must hold wherever the search lands.)
    pub depth_cap: u32,
    /// Shave only every `shave_stride`-th depth level (`depth %
    /// shave_stride == 0`). The dominant rung-2 cost is the full interval
    /// forward pass that seeds each `shave_3b` call's dirty-cone probes —
    /// paid per *stalled node*, and in a timeout-bound subtree nearly
    /// every node stalls. A stride keeps the coverage of the whole depth
    /// range (unlike a hard cap) at `1/stride` of the cost: a slab missed
    /// at depth `d` is re-probed two levels down on the narrowed child,
    /// where it is more likely infeasible anyway.
    pub shave_stride: u32,
    /// Widest box (max supported-axis width) rung 1 attempts. The
    /// mean-value enclosure behind interval-Newton is first-order tight,
    /// so on wide boxes the gradient ranges blow up and the sweeps are
    /// expensive no-ops; wide stalled boxes skip straight to rung-2
    /// shaving, whose dirty-cone probes stay cheap at any width.
    pub newton_width_cap: f64,
}

impl Escalation {
    /// Ladder disabled: rung-0 behaviour, bit-identical to the pre-ladder
    /// solver.
    pub fn off() -> Escalation {
        Escalation {
            max_rung: 0,
            ..Escalation::full()
        }
    }

    /// The full ladder with the fitted defaults (see `solver_bench`'s
    /// `ladder` mode for the measured trajectory).
    pub fn full() -> Escalation {
        Escalation {
            max_rung: 2,
            stall_gain: 0.25,
            newton_sweeps: 2,
            shave_frac: 0.0625,
            shave_passes: 5,
            depth_cap: 8,
            shave_stride: 1,
            newton_width_cap: 0.25,
        }
    }
}

impl Default for Escalation {
    fn default() -> Self {
        Escalation::off()
    }
}

/// The δ-complete solver: HC4 contraction + branch-and-prune, with a scalar
/// DFS and a batched frontier engine that are observationally identical.
#[derive(Debug, Clone)]
pub struct DeltaSolver {
    /// Numerical relaxation of atom bounds (dReal's δ); also the box-width
    /// scale at which undecided boxes are declared δ-SAT.
    pub delta: f64,
    pub budget: SolveBudget,
    /// Enable the mean-value-form infeasibility test as a second pruning
    /// signal (see [`crate::meanvalue::MeanValue`]); off by default.
    pub mean_value: bool,
    /// Frontier batch width: how many boxes one forward pass evaluates at
    /// once. `1` (the default) runs the scalar DFS; larger widths run the
    /// batched engine, which speculatively evaluates up to this many
    /// pending boxes per structure-of-arrays tape pass and re-evaluates
    /// children dirty-slot-only from their parent's forward image. Outcomes,
    /// models, and search statistics are identical at every width — only
    /// the wall-clock changes.
    pub batch_width: usize,
    /// The contractor escalation ladder for stalled boxes; off by default.
    /// Like `batch_width`, any setting produces identical results across
    /// engines — unlike `batch_width`, it changes *which* boxes the search
    /// visits (stalled boxes contract harder instead of splitting), so it
    /// turns rung-0 timeouts into decisions.
    pub escalation: Escalation,
}

impl Default for DeltaSolver {
    fn default() -> Self {
        DeltaSolver {
            delta: 1e-3,
            budget: SolveBudget::default(),
            mean_value: false,
            batch_width: 1,
            escalation: Escalation::off(),
        }
    }
}

/// The dirty-mask bit of box axis `i` (saturates above 64 variables, like
/// the tape's dependency bitsets).
#[inline]
fn axis_bit(i: usize) -> u64 {
    if i < 64 {
        1 << i
    } else {
        u64::MAX
    }
}

/// The decision the search takes on one contracted box. Shared verbatim
/// between the scalar DFS and the batched frontier, so the two engines
/// cannot drift.
enum BoxStep {
    /// The box contains no solution.
    Pruned,
    /// The box contains no solution, proved by the rung-1 Newton contractor
    /// (same pruning semantics as `Pruned`; the distinction only matters to
    /// the trace, where the checker must replay a Newton step instead of an
    /// HC4 contraction).
    NewtonPruned,
    /// δ-SAT with this model (exact midpoint hit or width-floor decision).
    Sat(Vec<f64>),
    /// Undecided: halves in search order (`first` is explored first).
    /// `parent` is the contracted box they were bisected from and `axis`
    /// the bisected dimension — the batched engine's snapshot-refresh
    /// heuristic needs both; the scalar DFS ignores them. `low_first` says
    /// whether `first` is the lower half, which is all a trace replay needs
    /// to reconstruct the exploration order.
    Split {
        first: BoxDomain,
        second: BoxDomain,
        parent: BoxDomain,
        axis: u32,
        low_first: bool,
        /// Neither this node nor any ancestor was modified by a ladder
        /// rung (Newton/shave): the children's geometry is bit-identical
        /// to the rung-0 search, so their δ-decisions may take the plain
        /// rung-0 fast paths (see `step_after_contract`).
        pristine: bool,
    },
}

/// One step of a traced scalar search, recorded at the moment the popped
/// box's decision is taken. Together with the root box, the sequence of
/// events reconstructs the entire explored cover: a replay maintains the
/// same DFS stack, so an independent checker (the `xcv-cert` crate) can
/// re-derive every visited box without access to the search itself.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The popped box was discarded: HC4 contraction proved it empty.
    Pruned,
    /// The popped box stayed undecided and was bisected: `contracted` is
    /// the box after contraction, `axis` the bisected dimension, and
    /// `low_first` whether the lower half was explored first.
    Split {
        contracted: BoxDomain,
        axis: u32,
        low_first: bool,
    },
    /// The search stopped with this δ-SAT model inside the popped box.
    Sat { model: Vec<f64> },
    /// Rung 1 tightened the current box to `contracted` (an intermediate
    /// event: the node's terminal `Split`/`Sat` follows). The checker
    /// replays the recorded gradient tapes through the shared
    /// [`xcv_expr::newton::newton_contract`] and verifies by subset tests.
    Newton { contracted: BoxDomain },
    /// Rung 1 proved the current box has no solution (terminal for the
    /// node, like `Pruned`).
    NewtonPruned,
    /// Rung 2 shaved a slab off one face of the current box: axis
    /// `axis`'s bound moved to `bound` (its high bound when `high_face`,
    /// else its low bound). Intermediate, possibly repeated. The checker
    /// verifies each slab independently by a forward evaluation over the
    /// recorded main tape.
    Shave {
        axis: u32,
        high_face: bool,
        bound: f64,
    },
}

/// The recorded events of one [`DeltaSolver::solve_compiled_traced`] call,
/// in pop order (one event per visited node).
#[derive(Debug, Clone, Default)]
pub struct SolveTrace {
    pub events: Vec<TraceEvent>,
    /// The solve ran with the mean-value contractor enabled. Mean-value
    /// pruning is not replayable from the interval tape alone, so
    /// certificate emission rejects such traces.
    pub used_mean_value: bool,
    /// The search ran to a decision (`Unsat`/`DeltaSat`), i.e. the events
    /// account for the whole explored cover; `false` after a `Timeout`.
    pub complete: bool,
}

/// What the batched engine decided for one box — [`BoxStep`] with the
/// children laid out in push order plus the parent snapshot they evaluate
/// from.
#[derive(Debug)]
pub(crate) enum BoxRes {
    Pruned,
    Sat(Vec<f64>),
    /// Children in *push order* (the preferred half last, popped first).
    /// `snap` is the pool id of the parent's pure forward image;
    /// `pristine` is the children's inherited no-ladder-ancestor flag.
    Split {
        children: Vec<BoxDomain>,
        snap: Option<u32>,
        pristine: bool,
    },
}

#[derive(Debug)]
pub(crate) enum NodeState {
    /// Awaiting evaluation; `parent` is the snapshot to seed the lane from
    /// (`None` for the root: full forward pass).
    Raw { parent: Option<u32> },
    /// Speculatively evaluated; consumed when the node reaches the top.
    Done(BoxRes),
}

/// One entry of the batched frontier's work stack.
#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) b: BoxDomain,
    pub(crate) depth: u32,
    /// No ancestor was ladder-modified (see `step_after_contract`).
    pub(crate) pristine: bool,
    pub(crate) state: NodeState,
}

impl DeltaSolver {
    pub fn new(delta: f64, budget: SolveBudget) -> Self {
        DeltaSolver {
            delta,
            budget,
            mean_value: false,
            batch_width: 1,
            escalation: Escalation::off(),
        }
    }

    /// Enable or disable the mean-value pruning test.
    pub fn with_mean_value(mut self, on: bool) -> Self {
        self.mean_value = on;
        self
    }

    /// Set the frontier batch width (`1` = scalar DFS; clamped to at least
    /// 1). Any width produces identical outcomes and statistics.
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width.max(1);
        self
    }

    /// Set the contractor escalation ladder (see [`Escalation`]).
    pub fn with_escalation(mut self, escalation: Escalation) -> Self {
        self.escalation = escalation;
        self
    }

    /// A stable 64-bit fingerprint of every field that can change a solve's
    /// *answer or coverage*: δ, both budget axes, the mean-value switch,
    /// the batch width, and the full escalation ladder. Two solvers with
    /// equal fingerprints produce bit-identical outcomes on any compiled
    /// problem, so memoized result stores key on this (FNV-1a over the
    /// exact bit patterns — no float rounding in the key).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.delta.to_bits());
        eat(self.budget.max_nodes);
        eat(self.budget.max_millis);
        eat(u64::from(self.mean_value));
        eat(self.batch_width as u64);
        let esc = &self.escalation;
        eat(u64::from(esc.max_rung));
        eat(esc.stall_gain.to_bits());
        eat(esc.newton_sweeps as u64);
        eat(esc.shave_frac.to_bits());
        eat(u64::from(esc.shave_passes));
        eat(u64::from(esc.depth_cap));
        eat(u64::from(esc.shave_stride));
        eat(esc.newton_width_cap.to_bits());
        h
    }

    /// Decide `formula` over `domain` (one-shot: compiles the formula, then
    /// solves — callers visiting many boxes should compile once and use
    /// [`DeltaSolver::solve_compiled`]).
    pub fn solve(&self, domain: &BoxDomain, formula: &Formula) -> Outcome {
        self.solve_with_stats(domain, formula).0
    }

    /// Decide `formula` over `domain`, returning search statistics
    /// (one-shot; see [`DeltaSolver::solve`]).
    pub fn solve_with_stats(&self, domain: &BoxDomain, formula: &Formula) -> (Outcome, SolveStats) {
        let compiled = CompiledFormula::compile(formula);
        let mut scratch = SolveScratch::new();
        self.solve_compiled_with_stats(domain, &compiled, &mut scratch)
    }

    /// Decide the compiled formula over `domain`, reusing `scratch` — the
    /// hot path: no compilation, no topo sorts, no per-box allocation beyond
    /// box splitting.
    pub fn solve_compiled(
        &self,
        domain: &BoxDomain,
        compiled: &CompiledFormula,
        scratch: &mut SolveScratch,
    ) -> Outcome {
        self.solve_compiled_with_stats(domain, compiled, scratch).0
    }

    /// [`DeltaSolver::solve_compiled`] with search statistics. Dispatches to
    /// the batched frontier engine when [`DeltaSolver::batch_width`] exceeds
    /// 1; both engines visit the same boxes in the same order and return
    /// identical outcomes and statistics.
    pub fn solve_compiled_with_stats(
        &self,
        domain: &BoxDomain,
        compiled: &CompiledFormula,
        scratch: &mut SolveScratch,
    ) -> (Outcome, SolveStats) {
        if self.batch_width > 1 {
            return self.solve_batched_with_stats(domain, compiled, scratch);
        }
        self.solve_scalar(domain, compiled, scratch, None)
    }

    /// [`DeltaSolver::solve_compiled_with_stats`] with the per-node search
    /// events recorded for certificate emission. Traced solving always runs
    /// the scalar DFS (the batched engine visits the same boxes in the same
    /// order, so the trace would be identical — recording from the
    /// reference engine keeps the hook trivial).
    pub fn solve_compiled_traced(
        &self,
        domain: &BoxDomain,
        compiled: &CompiledFormula,
        scratch: &mut SolveScratch,
    ) -> (Outcome, SolveStats, SolveTrace) {
        let mut trace = SolveTrace {
            events: Vec::new(),
            used_mean_value: self.mean_value,
            complete: false,
        };
        let (outcome, stats) = self.solve_scalar(domain, compiled, scratch, Some(&mut trace));
        trace.complete = !matches!(outcome, Outcome::Timeout);
        (outcome, stats, trace)
    }

    /// The scalar DFS, optionally recording one [`TraceEvent`] per visited
    /// node.
    fn solve_scalar(
        &self,
        domain: &BoxDomain,
        compiled: &CompiledFormula,
        scratch: &mut SolveScratch,
        mut trace: Option<&mut SolveTrace>,
    ) -> (Outcome, SolveStats) {
        let mut stats = SolveStats::default();
        if domain.is_empty() {
            return (Outcome::Unsat, stats);
        }
        let start = Instant::now();
        scratch.fcache = false;
        scratch.stack.clear();
        scratch.stack.push((domain.clone(), 0, true));
        // Supported-axis boxes narrower than this are δ-decided.
        let width_floor = self.delta.max(1e-12);
        while let Some((b, depth, pristine)) = scratch.stack.pop() {
            stats.nodes += 1;
            stats.max_depth = stats.max_depth.max(depth);
            // Compare elapsed time in u128: truncating `as_millis()` to u64
            // invites silent wrap bugs (mirrors `Verifier::past_deadline`).
            if stats.nodes > self.budget.max_nodes
                || (stats.nodes % 64 == 0
                    && start.elapsed().as_millis() > u128::from(self.budget.max_millis))
            {
                return (Outcome::Timeout, stats);
            }
            let contraction = compiled.contract(&b, scratch);
            let step = self.step_after_contract(
                compiled,
                &b,
                contraction,
                None,
                scratch,
                width_floor,
                depth,
                pristine,
                trace.as_deref_mut().map(|t| &mut t.events),
            );
            match step {
                BoxStep::Pruned => {
                    stats.pruned += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.events.push(TraceEvent::Pruned);
                    }
                }
                BoxStep::NewtonPruned => {
                    stats.pruned += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.events.push(TraceEvent::NewtonPruned);
                    }
                }
                BoxStep::Sat(mid) => {
                    if let Some(t) = trace.as_deref_mut() {
                        t.events.push(TraceEvent::Sat { model: mid.clone() });
                    }
                    return (Outcome::DeltaSat(mid), stats);
                }
                BoxStep::Split {
                    first,
                    second,
                    parent,
                    axis,
                    low_first,
                    pristine,
                } => {
                    stats.branched += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.events.push(TraceEvent::Split {
                            contracted: parent,
                            axis,
                            low_first,
                        });
                    }
                    // DFS order: the preferred half is pushed last, popped
                    // first.
                    if !second.is_empty() {
                        scratch.stack.push((second, depth + 1, pristine));
                    }
                    if !first.is_empty() {
                        scratch.stack.push((first, depth + 1, pristine));
                    }
                }
            }
        }
        (Outcome::Unsat, stats)
    }

    /// The per-box decision of the branch-and-prune search, applied after
    /// contraction — one implementation behind the scalar DFS *and* the
    /// batched frontier, so the bisection policy, δ-decision, pruning
    /// semantics, and the escalation ladder cannot drift between the two
    /// engines. `b` is the popped (pre-contraction) box — the ladder's
    /// stall detector measures the contraction gain against it. `pre`
    /// optionally carries the batched engine's precomputed midpoint/score
    /// stage; it is discarded whenever a later rung modifies the box.
    /// `events` receives the ladder's intermediate trace events (every
    /// terminal event — `Pruned`, `NewtonPruned`, `Split`, `Sat` — stays
    /// with the caller). `pristine` says no ancestor box was modified by a
    /// ladder rung: such a node's geometry — and therefore its midpoint
    /// and δ-decision — is bit-identical to the rung-0 search, so the
    /// flip-prevention machinery (certified midpoint confirmation, sub-δ
    /// Newton refutation, δ-refinement) can be skipped; it exists only to
    /// keep ladder-*shifted* geometry from δ-deciding where rung 0 would
    /// have proven Unsat.
    #[allow(clippy::too_many_arguments)]
    fn step_after_contract(
        &self,
        compiled: &CompiledFormula,
        b: &BoxDomain,
        contraction: Contraction,
        pre: Option<crate::compile::LanePre>,
        scratch: &mut SolveScratch,
        width_floor: f64,
        depth: u32,
        pristine: bool,
        mut events: Option<&mut Vec<TraceEvent>>,
    ) -> BoxStep {
        let contracted = match contraction {
            Contraction::Empty => return BoxStep::Pruned,
            Contraction::Box(nb) => nb,
        };
        if contracted.is_empty() {
            return BoxStep::Pruned;
        }
        // `pre` was computed from the HC4 box; any further modification
        // (mean-value, ladder rungs) invalidates it.
        let mut modified = false;
        let mut contracted = if self.mean_value {
            match compiled.mv_contract(&contracted, scratch) {
                None => return BoxStep::Pruned,
                Some(nb) if compiled.mv_certainly_infeasible(&nb, scratch) => {
                    return BoxStep::Pruned
                }
                Some(nb) => {
                    if nb != contracted {
                        modified = true;
                    }
                    nb
                }
            }
        } else {
            contracted
        };
        // Escalation ladder: a box whose rung-0 contraction stalled gets
        // stronger contractors instead of burning budget on bisection. Only
        // *wide* boxes escalate: a box already near the δ resolution is
        // about to be δ-decided exactly like the rung-0 search would decide
        // it, and contracting it further can only move the δ-decision to a
        // different (sub-δ) box — that is how a rung-0 Unsat could flip to a
        // spurious δ-Sat. The δ-decision below is likewise taken on the
        // rung-0 width, so the ladder never *creates* δ-Sat leaves, it only
        // prunes or narrows boxes the search would have split anyway.
        let esc = self.escalation;
        let rung0_width = compiled.split_width(&contracted);
        let mut laddered = false;
        if esc.max_rung >= 1
            && depth <= esc.depth_cap
            && rung0_width > 4.0 * width_floor
            && crate::compile::improvement(b, &contracted) < esc.stall_gain
        {
            // Rung 1: interval-Newton Gauss–Seidel over the gradient tapes —
            // but only on boxes narrow enough for the first-order mean-value
            // enclosure to bite (see [`Escalation::newton_width_cap`]).
            let mut stalled = true;
            if rung0_width <= esc.newton_width_cap {
                match compiled.newton_contract(&contracted, esc.newton_sweeps, scratch) {
                    None => return BoxStep::NewtonPruned,
                    Some(nb) => {
                        stalled = crate::compile::improvement(&contracted, &nb) < esc.stall_gain;
                        if nb != contracted {
                            if let Some(ev) = events.as_deref_mut() {
                                ev.push(TraceEvent::Newton {
                                    contracted: nb.clone(),
                                });
                            }
                            modified = true;
                            laddered = true;
                            contracted = nb;
                        }
                    }
                }
            }
            // Rung 2: 3B slab shaving when Newton was skipped or stalled,
            // on strided depth levels (see [`Escalation::shave_stride`]).
            if esc.max_rung >= 2 && stalled && depth.is_multiple_of(esc.shave_stride) {
                if let Some(nb) = compiled.shave_3b(
                    &contracted,
                    scratch,
                    esc.shave_frac,
                    esc.shave_passes,
                    None,
                    |axis, high_face, bound| {
                        if let Some(ev) = events.as_deref_mut() {
                            ev.push(TraceEvent::Shave {
                                axis,
                                high_face,
                                bound,
                            });
                        }
                    },
                ) {
                    modified = true;
                    laddered = true;
                    contracted = nb;
                }
            }
        }
        // A node in a never-laddered subtree has exactly the box the rung-0
        // search would pop here, so every decision below may take the plain
        // rung-0 path — the flip-prevention detours only guard geometry the
        // ladder *shifted*.
        let pristine = pristine && !laddered;
        let pre = pre.filter(|_| !modified);
        // Fast model check: an exact solution at the midpoint settles it.
        // With the ladder on, the f64 claim is only a gate: it must be
        // confirmed by an outward-rounded interval evaluation, because the
        // ladder visits midpoints the rung-0 geometry never does — where a
        // rounding-level false positive would flip a sound rung-0 Unsat
        // into a spurious δ-Sat (observed near the `ln rs` cancellation of
        // the correlation functionals).
        let mid = contracted.midpoint();
        let holds = match pre {
            Some(p) => p.holds_mid,
            None => compiled.holds_at(&mid, scratch),
        };
        if holds && (pristine || compiled.holds_at_certified(&mid, scratch)) {
            return BoxStep::Sat(mid);
        }
        // δ-decision on small boxes: contraction could not rule the box out,
        // so the δ-weakening is satisfiable here (dReal's semantics). Only
        // *supported* axes count — an axis the formula never mentions cannot
        // affect satisfaction, so its width must not keep the box undecided.
        // The width tested is the *rung-0* one: a box the ladder contracted
        // below δ is split instead, so its children get their own HC4 round
        // exactly where the ladder-off search would have explored — the
        // ladder must never declare δ-Sat on a box rung 0 would have split.
        if rung0_width <= width_floor {
            if pristine {
                return BoxStep::Sat(mid);
            }
            // Last-resort rung-1 infeasibility test before punting to δ-Sat:
            // ladder contraction upstream shifts split midpoints, so the
            // search can reach sub-δ boxes that straddle the leaves the
            // rung-0 tree pruned — HC4 stalls on the straddling hull, but
            // the mean-value enclosure is first-order tight at sub-δ width.
            // Only the empty-proof is used; a mere contraction is discarded
            // (the box is about to be δ-decided either way, and a decision
            // must not move to a different sub-δ box).
            if compiled
                .newton_contract(&contracted, esc.newton_sweeps, scratch)
                .is_none()
            {
                return BoxStep::NewtonPruned;
            }
            // δ-refinement under the ladder: when Newton cannot refute the
            // straddling hull either, bisect up to two levels further
            // before the δ-Sat verdict — HC4 is not union-closed, so the
            // aligned halves are often refutable where their hull is not.
            // A δ/4-wide box is still δ-decided, exactly as without the
            // ladder.
            if rung0_width <= width_floor / 4.0 {
                return BoxStep::Sat(mid);
            }
        }
        // Branch on the widest supported dimension (never an axis the
        // expression does not mention); search the half whose midpoint is
        // closer to satisfying the formula first. Scoring runs on the
        // compiled f64 tapes (or comes precomputed from the batched
        // lane-score pass — bit-identical by construction).
        let (l, r, axis) = compiled.bisect_supported(&contracted);
        let (sl, sr) = match pre {
            Some(p) => (p.sl, p.sr),
            None => (
                compiled.violation_score(&l.midpoint(), scratch),
                compiled.violation_score(&r.midpoint(), scratch),
            ),
        };
        if sl <= sr {
            BoxStep::Split {
                first: l,
                second: r,
                parent: contracted,
                axis,
                low_first: true,
                pristine,
            }
        } else {
            BoxStep::Split {
                first: r,
                second: l,
                parent: contracted,
                axis,
                low_first: false,
                pristine,
            }
        }
    }

    /// The batched frontier engine: identical search, batched tape passes.
    ///
    /// Per-box evaluation (contract → mean-value → midpoint check →
    /// δ-decision → bisect + score) is a pure function of the box, so the
    /// engine may evaluate boxes *speculatively*: it takes the topmost
    /// `batch_width` pending boxes of the DFS stack, seeds each lane either
    /// for a full forward pass (the root) or dirty-slot re-evaluation from
    /// its parent's forward image (every child — only the slots depending
    /// on axes the child actually changed are recomputed), runs **one**
    /// SoA forward pass over all lanes, and finishes contraction per
    /// surviving lane. Results are then *consumed* strictly in DFS order
    /// with exactly the scalar bookkeeping — node counts, budget checks,
    /// early returns — so outcomes and statistics match the scalar engine
    /// bit for bit; speculation only ever wastes work (bounded by one
    /// batch) when a δ-SAT or timeout cuts the search short.
    fn solve_batched_with_stats(
        &self,
        domain: &BoxDomain,
        compiled: &CompiledFormula,
        scratch: &mut SolveScratch,
    ) -> (Outcome, SolveStats) {
        let mut stats = SolveStats::default();
        if domain.is_empty() {
            return (Outcome::Unsat, stats);
        }
        let start = Instant::now();
        let width_floor = self.delta.max(1e-12);
        // The incremental f64 point cache belongs to the batched engine's
        // dirty-evaluation machinery (the scalar engine stays the plain
        // reference it is benchmarked against).
        scratch.fcache = true;
        scratch.snaps.reset();
        let mut stack = std::mem::take(&mut scratch.bstack);
        stack.clear();
        stack.push(Node {
            b: domain.clone(),
            depth: 0,
            pristine: true,
            state: NodeState::Raw { parent: None },
        });
        let outcome = loop {
            match stack.last() {
                None => break Outcome::Unsat,
                Some(n) if matches!(n.state, NodeState::Raw { .. }) => {
                    // Ramp the batch width up with search depth-in-nodes:
                    // every evaluation beyond what the search consumes is
                    // speculative, so an early δ-SAT (very common on easy
                    // boxes) would waste up to a full batch of work. The
                    // ramp bounds that waste at ~half the consumed nodes
                    // while long searches — where batching actually pays —
                    // still reach the full width almost immediately.
                    let cap = (1 + stats.nodes as usize / 2).min(self.batch_width);
                    self.process_batch(compiled, &mut stack, scratch, width_floor, cap);
                }
                _ => {}
            }
            let node = stack.pop().expect("checked non-empty above");
            stats.nodes += 1;
            stats.max_depth = stats.max_depth.max(node.depth);
            if stats.nodes > self.budget.max_nodes
                || (stats.nodes % 64 == 0
                    && start.elapsed().as_millis() > u128::from(self.budget.max_millis))
            {
                break Outcome::Timeout;
            }
            let NodeState::Done(res) = node.state else {
                unreachable!("the batch pass evaluates the stack top");
            };
            match res {
                BoxRes::Pruned => stats.pruned += 1,
                BoxRes::Sat(mid) => break Outcome::DeltaSat(mid),
                BoxRes::Split {
                    children,
                    snap,
                    pristine,
                } => {
                    stats.branched += 1;
                    for cb in children {
                        stack.push(Node {
                            b: cb,
                            depth: node.depth + 1,
                            pristine,
                            state: NodeState::Raw { parent: snap },
                        });
                    }
                }
            }
        };
        scratch.bstack = stack;
        (outcome, stats)
    }

    /// Evaluate the topmost pending boxes of the stack (up to
    /// `batch_width`) in one batched forward pass, leaving each as
    /// [`NodeState::Done`].
    fn process_batch(
        &self,
        compiled: &CompiledFormula,
        stack: &mut [Node],
        scratch: &mut SolveScratch,
        width_floor: f64,
        width_cap: usize,
    ) {
        let slots = compiled.itape().len();
        // Lanes: stack indices of the topmost Raw nodes. Entries deeper than
        // the top are speculative — they may be consumed later or never
        // (early δ-SAT/timeout), but their evaluation is pure either way.
        let mut lanes: Vec<usize> = Vec::with_capacity(width_cap);
        for idx in (0..stack.len()).rev() {
            if matches!(stack[idx].state, NodeState::Raw { .. }) {
                lanes.push(idx);
                if lanes.len() == width_cap {
                    break;
                }
            }
        }
        let width = lanes.len();
        debug_assert!(width > 0, "caller saw a Raw top");
        let mut soa = std::mem::take(&mut scratch.soa);
        crate::compile::ensure_slots(&mut soa, slots * width);
        let mut dirty = std::mem::take(&mut scratch.lane_dirty);
        dirty.clear();
        dirty.resize(width, u64::MAX);
        // Seed child lanes from their parent's forward image; the dirty mask
        // is every axis on which the child's box differs from the box the
        // snapshot was evaluated over (the split axis plus whatever the
        // parent's contraction narrowed).
        let mut parents: Vec<Option<u32>> = vec![None; width];
        for (j, &idx) in lanes.iter().enumerate() {
            let NodeState::Raw { parent } = stack[idx].state else {
                unreachable!("lane selection")
            };
            parents[j] = parent;
            if let Some(snap) = parent {
                let (vals, pbox) = scratch.snaps.get(snap);
                let mut mask = 0u64;
                for (i, (cd, pd)) in stack[idx].b.dims().iter().zip(pbox).enumerate() {
                    if cd != pd {
                        mask |= axis_bit(i);
                    }
                }
                dirty[j] = mask;
                #[cfg(feature = "batch-debug")]
                {
                    use std::sync::atomic::{AtomicU64, Ordering};
                    static LANES: AtomicU64 = AtomicU64::new(0);
                    static CONE: AtomicU64 = AtomicU64::new(0);
                    static FULL: AtomicU64 = AtomicU64::new(0);
                    let cone = compiled.itape().cone_count(mask);
                    let l = LANES.fetch_add(1, Ordering::Relaxed) + 1;
                    let c = CONE.fetch_add(cone as u64, Ordering::Relaxed) + cone as u64;
                    let f = FULL.fetch_add(slots as u64, Ordering::Relaxed) + slots as u64;
                    if l % 5000 == 0 {
                        eprintln!(
                            "[batch-debug] {} child lanes, avg dirty cone {:.1}%",
                            l,
                            100.0 * c as f64 / f as f64
                        );
                    }
                }
                for i in 0..slots {
                    soa[i * width + j] = vals[i];
                }
            }
        }
        // Parent references are released at the *end* of the batch (not
        // here): sibling lanes share a snapshot, and a split lane may alias
        // its parent snapshot for its own children (snapshot-copy elision).
        // One instruction decode per slot serves every lane.
        let domains: Vec<&[Interval]> = lanes.iter().map(|&idx| stack[idx].b.dims()).collect();
        compiled
            .itape()
            .forward_batch(width, &domains, &dirty, &mut soa);
        drop(domains);
        // Keep the pure forward image around — the contraction rounds
        // mutate the SoA in place, and split lanes snapshot their pure
        // column for their children's dirty-slot passes.
        let mut pure = std::mem::take(&mut scratch.soa_pure);
        pure.clear();
        pure.extend_from_slice(&soa[..slots * width]);
        // Batched HC4 rounds across all lanes (instruction-outer sweeps).
        let mut boxes = std::mem::take(&mut scratch.lane_boxes);
        boxes.clear();
        boxes.extend(lanes.iter().map(|&idx| stack[idx].b.clone()));
        let mut alive = std::mem::take(&mut scratch.lane_alive);
        let mut results = std::mem::take(&mut scratch.lane_results);
        let mut current = std::mem::take(&mut scratch.lane_current);
        compiled.contract_batch(
            &boxes,
            width,
            &mut soa[..slots * width],
            &mut alive,
            &mut results,
            &mut current,
        );
        // Satellite-2 pass: one batched f64 tape run precomputes every
        // surviving lane's midpoint check and split scores.
        compiled.lane_scores(&results, scratch);
        let mut pres = std::mem::take(&mut scratch.lane_pre);
        // Take the shared per-box decision lane by lane.
        for (j, &idx) in lanes.iter().enumerate() {
            let b = &boxes[j];
            let contraction = results[j]
                .take()
                .expect("contract_batch decides every lane");
            let pre = pres[j].take();
            let step = self.step_after_contract(
                compiled,
                b,
                contraction,
                pre,
                scratch,
                width_floor,
                stack[idx].depth,
                stack[idx].pristine,
                None,
            );
            let res = match step {
                BoxStep::Pruned | BoxStep::NewtonPruned => BoxRes::Pruned,
                BoxStep::Sat(mid) => BoxRes::Sat(mid),
                BoxStep::Split {
                    first,
                    second,
                    parent,
                    axis,
                    low_first: _,
                    pristine,
                } => {
                    let mut children = Vec::with_capacity(2);
                    if !second.is_empty() {
                        children.push(second);
                    }
                    if !first.is_empty() {
                        children.push(first);
                    }
                    let snap = if children.is_empty() {
                        None
                    } else {
                        // Contraction-aware refresh: children are halves of
                        // the *contracted* box, so against the raw image
                        // they would re-evaluate every contracted axis'
                        // cone — per child. Advancing the snapshot to the
                        // contracted box once (a masked partial pass)
                        // leaves each child only the split-axis cone. Do it
                        // exactly when the weighted cone costs say sharing
                        // wins: 2·cost(C∪S) > cost(C) + 2·cost(S).
                        let mut contraction_mask = 0u64;
                        for (i, (bd, pd)) in b.dims().iter().zip(parent.dims()).enumerate() {
                            if bd != pd {
                                contraction_mask |= axis_bit(i);
                            }
                        }
                        let split_mask = axis_bit(axis as usize);
                        let refresh = contraction_mask != 0 && {
                            let both = compiled.cone_cost(contraction_mask | split_mask);
                            2.0 * both
                                > compiled.cone_cost(contraction_mask)
                                    + 2.0 * compiled.cone_cost(split_mask)
                        };
                        // Snapshot-copy elision: when the lane was seeded
                        // from a parent snapshot and its dirty-cone
                        // re-evaluation reproduced that image bitwise
                        // (common on saturated min/max/clamp cones), the
                        // children can consume the parent snapshot directly
                        // — the seeded slots were copied verbatim and the
                        // recomputed cone came out unchanged, so the stored
                        // column would equal the parent's. Skip the copy
                        // and bump the parent's refcount instead.
                        let alias = (!refresh).then_some(parents[j]).flatten().filter(|&pid| {
                            let (pvals, _) = scratch.snaps.get(pid);
                            let deps = compiled.itape().deps();
                            let m = dirty[j];
                            (0..slots).all(|i| {
                                deps[i] & m == 0 || {
                                    let a = pure[i * width + j];
                                    let p = pvals[i];
                                    a.lo.to_bits() == p.lo.to_bits()
                                        && a.hi.to_bits() == p.hi.to_bits()
                                }
                            })
                        });
                        match alias {
                            Some(pid) => {
                                scratch.snaps.retain(pid, children.len() as u32);
                                Some(pid)
                            }
                            None => {
                                // Snapshot the lane's *pure* forward image
                                // for the children's dirty-slot passes.
                                let id = scratch.snaps.alloc(children.len() as u32);
                                let (vals, pbox) = scratch.snaps.store(id);
                                vals.extend((0..slots).map(|i| pure[i * width + j]));
                                if refresh {
                                    compiled.itape().forward_masked(
                                        contraction_mask,
                                        parent.dims(),
                                        vals,
                                    );
                                    pbox.extend_from_slice(parent.dims());
                                } else {
                                    pbox.extend_from_slice(b.dims());
                                }
                                Some(id)
                            }
                        }
                    };
                    BoxRes::Split {
                        children,
                        snap,
                        pristine,
                    }
                }
            };
            stack[idx].state = NodeState::Done(res);
        }
        // Now that no lane can alias them anymore, release the parent
        // snapshots every lane seeded from.
        for pid in parents.iter().take(width).copied().flatten() {
            scratch.snaps.release(pid);
        }
        scratch.lane_pre = pres;
        scratch.soa = soa;
        scratch.soa_pure = pure;
        scratch.lane_dirty = dirty;
        scratch.lane_boxes = boxes;
        scratch.lane_alive = alive;
        scratch.lane_results = results;
        scratch.lane_current = current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, Rel};
    use xcv_expr::{constant, var};

    fn solver() -> DeltaSolver {
        DeltaSolver::new(1e-4, SolveBudget::nodes(200_000))
    }

    #[test]
    fn unsat_simple() {
        // x^2 + 1 <= 0 has no real solution.
        let f = Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn sat_with_exact_model() {
        // x^2 - 4 <= 0 and x - 1 >= 0: satisfiable on [1, 2].
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) - 4.0, Rel::Le),
            Atom::new(var(0) - 1.0, Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                assert!(f.holds_at(&m), "model {m:?} must satisfy exactly here");
                assert!((1.0..=2.0).contains(&m[0]));
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_transcendental() {
        // exp(x) <= 0 is unsatisfiable.
        let f = Formula::single(Atom::new(var(0).exp(), Rel::Le));
        let b = BoxDomain::from_bounds(&[(-50.0, 50.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn tight_feasible_sliver_found() {
        // | sin-free thin band: 1e-6 <= x - y <= 2e-6 inside [0,1]^2.
        let d = var(0) - var(1);
        let f = Formula::new(vec![
            Atom::new(d.clone() - 1e-6, Rel::Ge),
            Atom::new(d - 2e-6, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = DeltaSolver::new(1e-9, SolveBudget::nodes(500_000));
        match s.solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                let v = m[0] - m[1];
                assert!((1e-6 - 1e-9..=2e-6 + 1e-9).contains(&v), "v = {v}");
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn timeout_respected() {
        // A hard equality-like band with a zero node budget must time out.
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Ge),
            Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let s = DeltaSolver::new(1e-12, SolveBudget::nodes(2));
        assert_eq!(s.solve(&b, &f), Outcome::Timeout);
    }

    #[test]
    fn circle_boundary_delta_sat() {
        // The unit circle as two inequalities: only δ-solutions exist.
        let r2 = var(0).powi(2) + var(1).powi(2);
        let f = Formula::new(vec![
            Atom::new(r2.clone() - 1.0, Rel::Ge),
            Atom::new(r2 - 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let s = DeltaSolver::new(1e-3, SolveBudget::nodes(1_000_000));
        match s.solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                let r = m[0] * m[0] + m[1] * m[1];
                assert!((r - 1.0).abs() < 0.05, "model radius^2 {r}");
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn empty_domain_is_unsat() {
        let f = Formula::single(Atom::new(var(0), Rel::Ge));
        let b = BoxDomain::new(vec![xcv_interval::Interval::EMPTY]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn point_domain() {
        let f = Formula::single(Atom::new(var(0) - 2.0, Rel::Ge));
        let hit = BoxDomain::from_bounds(&[(2.0, 2.0)]);
        let miss = BoxDomain::from_bounds(&[(1.0, 1.0)]);
        assert!(matches!(solver().solve(&hit, &f), Outcome::DeltaSat(_)));
        assert_eq!(solver().solve(&miss, &f), Outcome::Unsat);
    }

    #[test]
    fn lambert_constraint_end_to_end() {
        // W(x) >= 1 and x <= 2: unsat since W(2) ≈ 0.852.
        let f = Formula::new(vec![
            Atom::new(var(0).lambert_w() - 1.0, Rel::Ge),
            Atom::new(var(0) - 2.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 100.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn ite_constraint_end_to_end() {
        // ite(x >= 0, x - 5, -x - 5) >= 0  means |x| >= 5.
        let e = xcv_expr::Expr::ite(&var(0), &(var(0) - 5.0), &(-var(0) - 5.0));
        let f = Formula::single(Atom::new(e, Rel::Ge));
        let inside = BoxDomain::from_bounds(&[(-4.0, 4.0)]);
        assert_eq!(solver().solve(&inside, &f), Outcome::Unsat);
        let outside = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        match solver().solve(&outside, &f) {
            Outcome::DeltaSat(m) => assert!(m[0].abs() >= 5.0 - 1e-3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_populated() {
        let f = Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let (out, stats) = solver().solve_with_stats(&b, &f);
        assert_eq!(out, Outcome::Unsat);
        assert!(stats.nodes >= 1);
        assert!(stats.pruned >= 1);
    }

    #[test]
    fn strict_vs_nonstrict_boundary() {
        // x >= 0 and -x >= 0 has the single solution x = 0.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Ge),
            Atom::new(-var(0), Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0)]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => assert!(m[0].abs() <= 1e-3),
            other => panic!("{other:?}"),
        }
        // Strict version x > 0 and -x > 0 — contraction alone cannot prove
        // emptiness of the closed relaxation, so a δ-SAT near 0 or Unsat are
        // both acceptable dReal-style answers; exact recheck must fail.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Gt),
            Atom::new(-var(0), Rel::Gt),
        ]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => assert!(!f.holds_at(&m)),
            Outcome::Unsat | Outcome::Timeout => {}
        }
    }

    #[test]
    fn mean_value_agrees_with_plain_on_outcomes() {
        // MV is a pruning accelerator; it must never change Unsat/Sat
        // answers, only how fast they arrive.
        let cases = [
            Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le)), // unsat
            Formula::new(vec![
                Atom::new(var(0).powi(2) - 4.0, Rel::Le),
                Atom::new(var(0) - 1.0, Rel::Ge),
            ]), // sat
        ];
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        for f in cases {
            let plain = solver().solve(&b, &f);
            let mv = solver().with_mean_value(true).solve(&b, &f);
            match (plain, mv) {
                (Outcome::Unsat, Outcome::Unsat) => {}
                (Outcome::DeltaSat(_), Outcome::DeltaSat(_)) => {}
                (p, m) => panic!("divergent outcomes: {p:?} vs {m:?}"),
            }
        }
    }

    #[test]
    fn mean_value_prunes_dependency_heavy_formula() {
        // x - x^2 >= 0.3 is unsatisfiable (max is 0.25); MV proves it with
        // far fewer nodes than the natural extension needs.
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.3, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let (out_plain, stats_plain) = solver().solve_with_stats(&b, &f);
        let (out_mv, stats_mv) = solver().with_mean_value(true).solve_with_stats(&b, &f);
        assert_eq!(out_plain, Outcome::Unsat);
        assert_eq!(out_mv, Outcome::Unsat);
        assert!(
            stats_mv.nodes <= stats_plain.nodes,
            "MV should not explore more: {} vs {}",
            stats_mv.nodes,
            stats_plain.nodes
        );
    }

    #[test]
    fn compiled_session_reuse_matches_one_shot() {
        // One compiled formula + one scratch across many boxes must agree
        // with a fresh compile-per-box solve on every box.
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) - 4.0, Rel::Le),
            Atom::new(var(0) - 1.0, Rel::Ge),
        ]);
        let s = solver();
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        for i in 0..12 {
            let lo = -6.0 + i as f64;
            let b = BoxDomain::from_bounds(&[(lo, lo + 1.5)]);
            let fresh = s.solve(&b, &f);
            let session = s.solve_compiled(&b, &compiled, &mut scratch);
            match (fresh, session) {
                (Outcome::Unsat, Outcome::Unsat) | (Outcome::Timeout, Outcome::Timeout) => {}
                (Outcome::DeltaSat(a), Outcome::DeltaSat(c)) => {
                    assert_eq!(a, c, "deterministic search must match");
                }
                (a, c) => panic!("divergent: {a:?} vs {c:?}"),
            }
        }
    }

    // The "session solving never compiles" counter assertion lives in
    // `tests/compile_once.rs` (own binary + mutex): the process-global
    // counter races with sibling unit tests compiling on parallel threads.

    #[test]
    fn compiled_mean_value_session() {
        // The MV gradients build lazily inside the compiled formula; enabling
        // mean_value on the compiled path must match the plain path.
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.3, Rel::Ge));
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let s = solver().with_mean_value(true);
        let (out, st) = s.solve_compiled_with_stats(&b, &compiled, &mut scratch);
        assert_eq!(out, Outcome::Unsat);
        let (out2, st2) = s.solve_with_stats(&b, &f);
        assert_eq!(out2, Outcome::Unsat);
        assert_eq!(st.nodes, st2.nodes);
    }

    #[test]
    fn batched_widths_agree_with_scalar() {
        // Every batch width must reproduce the scalar DFS exactly: outcome,
        // model, and every statistic, across sat/unsat/timeout cases.
        let cases = [
            Formula::single(Atom::new(var(0).powi(2) + var(1).powi(2) + 1.0, Rel::Le)),
            Formula::new(vec![
                Atom::new(var(0).powi(2) - 4.0, Rel::Le),
                Atom::new(var(0) - var(1) - 1.0, Rel::Ge),
            ]),
            Formula::new(vec![
                Atom::new(var(0).exp() - var(1).powi(2) - 1.0, Rel::Ge),
                Atom::new(var(0).exp() - var(1).powi(2) - 1.0, Rel::Le),
            ]),
        ];
        let b = BoxDomain::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]);
        for (i, f) in cases.iter().enumerate() {
            for budget in [25, 20_000] {
                let compiled = CompiledFormula::compile(f);
                let mut scratch = SolveScratch::new();
                let scalar = DeltaSolver::new(1e-3, SolveBudget::nodes(budget));
                let (want, want_stats) =
                    scalar.solve_compiled_with_stats(&b, &compiled, &mut scratch);
                for w in [2, 3, 8, 64] {
                    let batched = scalar.clone().with_batch_width(w);
                    let (got, got_stats) =
                        batched.solve_compiled_with_stats(&b, &compiled, &mut scratch);
                    assert_eq!(want, got, "case {i}, width {w}, budget {budget}");
                    let k = |s: &SolveStats| (s.nodes, s.pruned, s.branched, s.max_depth);
                    assert_eq!(
                        k(&want_stats),
                        k(&got_stats),
                        "case {i}, width {w}, budget {budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_mean_value_agrees_with_scalar() {
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.3, Rel::Ge));
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let s = solver().with_mean_value(true);
        let (want, ws) = s.solve_compiled_with_stats(&b, &compiled, &mut scratch);
        let (got, gs) =
            s.with_batch_width(4)
                .solve_compiled_with_stats(&b, &compiled, &mut scratch);
        assert_eq!(want, got);
        assert_eq!(ws.nodes, gs.nodes);
    }

    #[test]
    fn unsupported_axes_never_split() {
        // The formula mentions only x0; the box carries a wide unused x1.
        // The δ-solver must decide without ever splitting (or δ-gating on)
        // axis 1 — an x1-split would blow the node count far past this
        // budget, and the witness keeps x1 at the untouched box midpoint.
        let f = Formula::new(vec![
            Atom::new(var(0) - 1.0, Rel::Ge),
            Atom::new(var(0) - 1.0 - 1e-6, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 2.0), (-1000.0, 1000.0)]);
        let s = DeltaSolver::new(1e-9, SolveBudget::nodes(500));
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.support_mask(), 0b01);
        let mut scratch = SolveScratch::new();
        match s.solve_compiled(&b, &compiled, &mut scratch) {
            Outcome::DeltaSat(m) => {
                assert!((m[0] - 1.0).abs() <= 1e-5, "{m:?}");
                assert_eq!(m[1], 0.0, "unmentioned axis stays at the midpoint");
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
        // Batched path agrees.
        let (scalar, st) = s.solve_compiled_with_stats(&b, &compiled, &mut scratch);
        let (batched, bt) =
            s.with_batch_width(8)
                .solve_compiled_with_stats(&b, &compiled, &mut scratch);
        assert_eq!(scalar, batched);
        assert_eq!(st.nodes, bt.nodes);
    }

    #[test]
    fn ladder_widths_agree_with_scalar() {
        // The escalation ladder is a pure per-box function, so scalar and
        // batched engines must stay bit-identical at any width with any
        // rung enabled: outcomes, models, and statistics.
        let cases = [
            Formula::single(Atom::new(var(0).powi(2) + var(1).powi(2) + 1.0, Rel::Le)),
            Formula::new(vec![
                Atom::new(var(0).powi(2) - 4.0, Rel::Le),
                Atom::new(var(0) - var(1) - 1.0, Rel::Ge),
            ]),
            Formula::new(vec![
                Atom::new(var(0).exp() - var(1).powi(2) - 1.0, Rel::Ge),
                Atom::new(var(0).exp() - var(1).powi(2) - 1.0, Rel::Le),
            ]),
            Formula::single(Atom::new(
                var(0) - var(0).powi(2) - var(1).powi(2) - 0.3,
                Rel::Ge,
            )),
        ];
        let b = BoxDomain::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]);
        for esc in [
            Escalation {
                max_rung: 1,
                ..Escalation::full()
            },
            Escalation::full(),
        ] {
            for (i, f) in cases.iter().enumerate() {
                for budget in [25, 20_000] {
                    let compiled = CompiledFormula::compile(f);
                    let mut scratch = SolveScratch::new();
                    let scalar =
                        DeltaSolver::new(1e-3, SolveBudget::nodes(budget)).with_escalation(esc);
                    let (want, want_stats) =
                        scalar.solve_compiled_with_stats(&b, &compiled, &mut scratch);
                    for w in [2, 8] {
                        let batched = scalar.clone().with_batch_width(w);
                        let (got, got_stats) =
                            batched.solve_compiled_with_stats(&b, &compiled, &mut scratch);
                        assert_eq!(want, got, "case {i}, width {w}, budget {budget}");
                        let k = |s: &SolveStats| (s.nodes, s.pruned, s.branched, s.max_depth);
                        assert_eq!(
                            k(&want_stats),
                            k(&got_stats),
                            "case {i}, width {w}, budget {budget}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ladder_turns_stall_into_decision() {
        // x − x² ≥ 0.2501 is unsatisfiable by a 1e-4 margin (max 0.25).
        // The natural extension's dependency error is first-order in the
        // box width, so plain HC4 must bisect to width ~1e-4 near the
        // peak; the ladder's mean-value enclosure is second-order tight
        // and prunes at width ~1e-2 — orders of magnitude fewer nodes.
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.2501, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let plain = DeltaSolver::new(1e-6, SolveBudget::nodes(200_000));
        let (_, plain_stats) = plain.solve_compiled_with_stats(&b, &compiled, &mut scratch);
        let ladder = plain.clone().with_escalation(Escalation::full());
        let (out, stats) = ladder.solve_compiled_with_stats(&b, &compiled, &mut scratch);
        assert_eq!(out, Outcome::Unsat);
        assert!(
            stats.nodes < plain_stats.nodes,
            "ladder {} vs rung-0 {}",
            stats.nodes,
            plain_stats.nodes
        );
        // A budget between the two: rung 0 times out, the ladder decides.
        let tight = SolveBudget::nodes(stats.nodes + 1);
        let plain_tight = DeltaSolver::new(1e-6, tight);
        assert_eq!(
            plain_tight.solve_compiled(&b, &compiled, &mut scratch),
            Outcome::Timeout
        );
        assert_eq!(
            plain_tight
                .with_escalation(Escalation::full())
                .solve_compiled(&b, &compiled, &mut scratch),
            Outcome::Unsat
        );
    }

    #[test]
    fn ladder_trace_records_newton_steps() {
        // Traced ladder solving must record the rung transforms so
        // certificates can replay them: every Newton box is a subset of
        // the box it tightened, and shave bounds stay inside their axis.
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.2501, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let s =
            DeltaSolver::new(1e-6, SolveBudget::nodes(200_000)).with_escalation(Escalation::full());
        let (out, _, trace) = s.solve_compiled_traced(&b, &compiled, &mut scratch);
        assert_eq!(out, Outcome::Unsat);
        assert!(trace.complete);
        assert!(
            trace
                .events
                .iter()
                .any(|e| matches!(e, TraceEvent::Newton { .. } | TraceEvent::NewtonPruned)),
            "ladder trace must contain Newton steps: {:?}",
            trace.events
        );
        // Replay the stack discipline: ladder events transform the current
        // box; terminal events consume it.
        let mut stack = vec![b.clone()];
        for e in &trace.events {
            let cur = stack.last().expect("event without a box").clone();
            match e {
                TraceEvent::Pruned | TraceEvent::NewtonPruned => {
                    stack.pop();
                }
                TraceEvent::Sat { .. } => {
                    stack.pop();
                }
                TraceEvent::Newton { contracted } => {
                    for i in 0..cur.ndim() {
                        assert!(contracted.dim(i).lo >= cur.dim(i).lo);
                        assert!(contracted.dim(i).hi <= cur.dim(i).hi);
                    }
                    *stack.last_mut().unwrap() = contracted.clone();
                }
                TraceEvent::Shave {
                    axis,
                    high_face,
                    bound,
                } => {
                    let d = cur.dim(*axis as usize);
                    assert!(d.lo < *bound && *bound < d.hi);
                    let nd = if *high_face {
                        xcv_interval::Interval::new(d.lo, *bound)
                    } else {
                        xcv_interval::Interval::new(*bound, d.hi)
                    };
                    let mut nb = cur.clone();
                    nb.set_dim(*axis as usize, nd);
                    *stack.last_mut().unwrap() = nb;
                }
                TraceEvent::Split {
                    contracted,
                    axis,
                    low_first,
                } => {
                    stack.pop();
                    let (l, r) = contracted.bisect_dim(*axis as usize);
                    if *low_first {
                        stack.push(r);
                        stack.push(l);
                    } else {
                        stack.push(l);
                        stack.push(r);
                    }
                }
            }
        }
        assert!(stack.is_empty(), "Unsat trace must consume every box");
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut a = SolveStats {
            nodes: 3,
            pruned: 1,
            branched: 2,
            max_depth: 4,
        };
        a.absorb(SolveStats {
            nodes: 5,
            pruned: 0,
            branched: 1,
            max_depth: 2,
        });
        assert_eq!((a.nodes, a.pruned, a.branched, a.max_depth), (8, 1, 3, 4));
    }

    #[test]
    fn deep_nesting_constant_formula() {
        let mut e = var(0);
        for _ in 0..30 {
            e = (e.clone() * 0.5 + 1.0).sqrt();
        }
        // e is bounded well below 3 on [0, 2]; e - 3 >= 0 must be unsat.
        let f = Formula::single(Atom::new(e - constant(3.0), Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 2.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }
}
