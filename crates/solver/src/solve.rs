//! Branch-and-prune δ-complete search.

use crate::boxdom::BoxDomain;
use crate::contract::{Contraction, Hc4};
use crate::formula::Formula;
use std::time::Instant;

/// Result of a [`DeltaSolver::solve`] call — the same three-way interface
/// the paper's Algorithm 1 consumes from dReal.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The formula has no solution in the box (sound).
    Unsat,
    /// The δ-weakening is satisfiable; the witness point satisfies every atom
    /// within δ (it may fail the exact formula — callers re-check).
    DeltaSat(Vec<f64>),
    /// Budget exhausted before a decision.
    Timeout,
}

/// Resource limits for one solve call (the paper used a 2-hour wall-clock
/// limit per dReal invocation; a node budget gives deterministic tests).
#[derive(Debug, Clone, Copy)]
pub struct SolveBudget {
    pub max_nodes: u64,
    pub max_millis: u64,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget {
            max_nodes: 200_000,
            max_millis: 2_000,
        }
    }
}

impl SolveBudget {
    pub fn nodes(n: u64) -> Self {
        SolveBudget {
            max_nodes: n,
            max_millis: u64::MAX,
        }
    }

    pub fn millis(ms: u64) -> Self {
        SolveBudget {
            max_nodes: u64::MAX,
            max_millis: ms,
        }
    }
}

/// Search statistics, for benchmarking and ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Boxes popped from the work stack.
    pub nodes: u64,
    /// Boxes discarded by contraction.
    pub pruned: u64,
    /// Boxes split.
    pub branched: u64,
    /// Maximum depth reached.
    pub max_depth: u32,
}

/// The δ-complete solver: HC4 contraction + branch-and-prune.
#[derive(Debug, Clone)]
pub struct DeltaSolver {
    /// Numerical relaxation of atom bounds (dReal's δ); also the box-width
    /// scale at which undecided boxes are declared δ-SAT.
    pub delta: f64,
    pub budget: SolveBudget,
    /// Enable the mean-value-form infeasibility test as a second pruning
    /// signal (see [`crate::meanvalue::MeanValue`]); off by default.
    pub mean_value: bool,
}

impl Default for DeltaSolver {
    fn default() -> Self {
        DeltaSolver {
            delta: 1e-3,
            budget: SolveBudget::default(),
            mean_value: false,
        }
    }
}

impl DeltaSolver {
    pub fn new(delta: f64, budget: SolveBudget) -> Self {
        DeltaSolver {
            delta,
            budget,
            mean_value: false,
        }
    }

    /// Enable or disable the mean-value pruning test.
    pub fn with_mean_value(mut self, on: bool) -> Self {
        self.mean_value = on;
        self
    }

    /// Decide `formula` over `domain`.
    pub fn solve(&self, domain: &BoxDomain, formula: &Formula) -> Outcome {
        self.solve_with_stats(domain, formula).0
    }

    /// Decide `formula` over `domain`, returning search statistics.
    pub fn solve_with_stats(&self, domain: &BoxDomain, formula: &Formula) -> (Outcome, SolveStats) {
        let mut stats = SolveStats::default();
        if domain.is_empty() {
            return (Outcome::Unsat, stats);
        }
        let start = Instant::now();
        let mut hc4 = Hc4::new(formula);
        let mut mv = self
            .mean_value
            .then(|| crate::meanvalue::MeanValue::new(formula));
        let mut stack: Vec<(BoxDomain, u32)> = vec![(domain.clone(), 0)];
        // Boxes narrower than this in every dimension are δ-decided.
        let width_floor = self.delta.max(1e-12);
        while let Some((b, depth)) = stack.pop() {
            stats.nodes += 1;
            stats.max_depth = stats.max_depth.max(depth);
            if stats.nodes > self.budget.max_nodes
                || (stats.nodes % 64 == 0
                    && start.elapsed().as_millis() as u64 > self.budget.max_millis)
            {
                return (Outcome::Timeout, stats);
            }
            let contracted = match hc4.contract(&b) {
                Contraction::Empty => {
                    stats.pruned += 1;
                    continue;
                }
                Contraction::Box(nb) => nb,
            };
            if contracted.is_empty() {
                stats.pruned += 1;
                continue;
            }
            let contracted = if let Some(mv) = mv.as_mut() {
                match mv.contract(&contracted) {
                    None => {
                        stats.pruned += 1;
                        continue;
                    }
                    Some(nb) if mv.certainly_infeasible(&nb) => {
                        stats.pruned += 1;
                        continue;
                    }
                    Some(nb) => nb,
                }
            } else {
                contracted
            };
            // Fast model check: an exact solution at the midpoint settles it.
            let mid = contracted.midpoint();
            if formula.holds_at(&mid) {
                return (Outcome::DeltaSat(mid), stats);
            }
            // δ-decision on small boxes: contraction could not rule the box
            // out, so the δ-weakening is satisfiable here (dReal's semantics).
            if contracted.max_width() <= width_floor {
                return (Outcome::DeltaSat(mid), stats);
            }
            // Branch on the widest dimension; search the half whose midpoint
            // is closer to satisfying the formula first (DFS order: push it
            // last).
            let (l, r) = contracted.bisect_widest();
            stats.branched += 1;
            let score = |bx: &BoxDomain| -> f64 {
                let m = bx.midpoint();
                formula
                    .atoms
                    .iter()
                    .map(|a| match a.expr.eval(&m) {
                        Ok(v) if !v.is_nan() => {
                            // Signed violation: positive means unsatisfied.
                            match a.rel {
                                crate::Rel::Le | crate::Rel::Lt => v.max(0.0),
                                crate::Rel::Ge | crate::Rel::Gt => (-v).max(0.0),
                            }
                        }
                        _ => f64::INFINITY,
                    })
                    .fold(0.0, f64::max)
            };
            let (sl, sr) = (score(&l), score(&r));
            if sl <= sr {
                if !r.is_empty() {
                    stack.push((r, depth + 1));
                }
                if !l.is_empty() {
                    stack.push((l, depth + 1));
                }
            } else {
                if !l.is_empty() {
                    stack.push((l, depth + 1));
                }
                if !r.is_empty() {
                    stack.push((r, depth + 1));
                }
            }
        }
        (Outcome::Unsat, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, Rel};
    use xcv_expr::{constant, var};

    fn solver() -> DeltaSolver {
        DeltaSolver::new(1e-4, SolveBudget::nodes(200_000))
    }

    #[test]
    fn unsat_simple() {
        // x^2 + 1 <= 0 has no real solution.
        let f = Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn sat_with_exact_model() {
        // x^2 - 4 <= 0 and x - 1 >= 0: satisfiable on [1, 2].
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) - 4.0, Rel::Le),
            Atom::new(var(0) - 1.0, Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                assert!(f.holds_at(&m), "model {m:?} must satisfy exactly here");
                assert!((1.0..=2.0).contains(&m[0]));
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_transcendental() {
        // exp(x) <= 0 is unsatisfiable.
        let f = Formula::single(Atom::new(var(0).exp(), Rel::Le));
        let b = BoxDomain::from_bounds(&[(-50.0, 50.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn tight_feasible_sliver_found() {
        // | sin-free thin band: 1e-6 <= x - y <= 2e-6 inside [0,1]^2.
        let d = var(0) - var(1);
        let f = Formula::new(vec![
            Atom::new(d.clone() - 1e-6, Rel::Ge),
            Atom::new(d - 2e-6, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        let s = DeltaSolver::new(1e-9, SolveBudget::nodes(500_000));
        match s.solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                let v = m[0] - m[1];
                assert!((1e-6 - 1e-9..=2e-6 + 1e-9).contains(&v), "v = {v}");
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn timeout_respected() {
        // A hard equality-like band with a zero node budget must time out.
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Ge),
            Atom::new(var(0).powi(2) + var(1).powi(2) - 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let s = DeltaSolver::new(1e-12, SolveBudget::nodes(2));
        assert_eq!(s.solve(&b, &f), Outcome::Timeout);
    }

    #[test]
    fn circle_boundary_delta_sat() {
        // The unit circle as two inequalities: only δ-solutions exist.
        let r2 = var(0).powi(2) + var(1).powi(2);
        let f = Formula::new(vec![
            Atom::new(r2.clone() - 1.0, Rel::Ge),
            Atom::new(r2 - 1.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(-2.0, 2.0), (-2.0, 2.0)]);
        let s = DeltaSolver::new(1e-3, SolveBudget::nodes(1_000_000));
        match s.solve(&b, &f) {
            Outcome::DeltaSat(m) => {
                let r = m[0] * m[0] + m[1] * m[1];
                assert!((r - 1.0).abs() < 0.05, "model radius^2 {r}");
            }
            other => panic!("expected DeltaSat, got {other:?}"),
        }
    }

    #[test]
    fn empty_domain_is_unsat() {
        let f = Formula::single(Atom::new(var(0), Rel::Ge));
        let b = BoxDomain::new(vec![xcv_interval::Interval::EMPTY]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn point_domain() {
        let f = Formula::single(Atom::new(var(0) - 2.0, Rel::Ge));
        let hit = BoxDomain::from_bounds(&[(2.0, 2.0)]);
        let miss = BoxDomain::from_bounds(&[(1.0, 1.0)]);
        assert!(matches!(solver().solve(&hit, &f), Outcome::DeltaSat(_)));
        assert_eq!(solver().solve(&miss, &f), Outcome::Unsat);
    }

    #[test]
    fn lambert_constraint_end_to_end() {
        // W(x) >= 1 and x <= 2: unsat since W(2) ≈ 0.852.
        let f = Formula::new(vec![
            Atom::new(var(0).lambert_w() - 1.0, Rel::Ge),
            Atom::new(var(0) - 2.0, Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(0.0, 100.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }

    #[test]
    fn ite_constraint_end_to_end() {
        // ite(x >= 0, x - 5, -x - 5) >= 0  means |x| >= 5.
        let e = xcv_expr::Expr::ite(&var(0), &(var(0) - 5.0), &(-var(0) - 5.0));
        let f = Formula::single(Atom::new(e, Rel::Ge));
        let inside = BoxDomain::from_bounds(&[(-4.0, 4.0)]);
        assert_eq!(solver().solve(&inside, &f), Outcome::Unsat);
        let outside = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        match solver().solve(&outside, &f) {
            Outcome::DeltaSat(m) => assert!(m[0].abs() >= 5.0 - 1e-3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_populated() {
        let f = Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let (out, stats) = solver().solve_with_stats(&b, &f);
        assert_eq!(out, Outcome::Unsat);
        assert!(stats.nodes >= 1);
        assert!(stats.pruned >= 1);
    }

    #[test]
    fn strict_vs_nonstrict_boundary() {
        // x >= 0 and -x >= 0 has the single solution x = 0.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Ge),
            Atom::new(-var(0), Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0)]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => assert!(m[0].abs() <= 1e-3),
            other => panic!("{other:?}"),
        }
        // Strict version x > 0 and -x > 0 — contraction alone cannot prove
        // emptiness of the closed relaxation, so a δ-SAT near 0 or Unsat are
        // both acceptable dReal-style answers; exact recheck must fail.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Gt),
            Atom::new(-var(0), Rel::Gt),
        ]);
        match solver().solve(&b, &f) {
            Outcome::DeltaSat(m) => assert!(!f.holds_at(&m)),
            Outcome::Unsat | Outcome::Timeout => {}
        }
    }

    #[test]
    fn mean_value_agrees_with_plain_on_outcomes() {
        // MV is a pruning accelerator; it must never change Unsat/Sat
        // answers, only how fast they arrive.
        let cases = [
            Formula::single(Atom::new(var(0).powi(2) + 1.0, Rel::Le)), // unsat
            Formula::new(vec![
                Atom::new(var(0).powi(2) - 4.0, Rel::Le),
                Atom::new(var(0) - 1.0, Rel::Ge),
            ]), // sat
        ];
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        for f in cases {
            let plain = solver().solve(&b, &f);
            let mv = solver().with_mean_value(true).solve(&b, &f);
            match (plain, mv) {
                (Outcome::Unsat, Outcome::Unsat) => {}
                (Outcome::DeltaSat(_), Outcome::DeltaSat(_)) => {}
                (p, m) => panic!("divergent outcomes: {p:?} vs {m:?}"),
            }
        }
    }

    #[test]
    fn mean_value_prunes_dependency_heavy_formula() {
        // x - x^2 >= 0.3 is unsatisfiable (max is 0.25); MV proves it with
        // far fewer nodes than the natural extension needs.
        let f = Formula::single(Atom::new(var(0) - var(0).powi(2) - 0.3, Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let (out_plain, stats_plain) = solver().solve_with_stats(&b, &f);
        let (out_mv, stats_mv) = solver().with_mean_value(true).solve_with_stats(&b, &f);
        assert_eq!(out_plain, Outcome::Unsat);
        assert_eq!(out_mv, Outcome::Unsat);
        assert!(
            stats_mv.nodes <= stats_plain.nodes,
            "MV should not explore more: {} vs {}",
            stats_mv.nodes,
            stats_plain.nodes
        );
    }

    #[test]
    fn deep_nesting_constant_formula() {
        let mut e = var(0);
        for _ in 0..30 {
            e = (e.clone() * 0.5 + 1.0).sqrt();
        }
        // e is bounded well below 3 on [0, 2]; e - 3 >= 0 must be unsat.
        let f = Formula::single(Atom::new(e - constant(3.0), Rel::Ge));
        let b = BoxDomain::from_bounds(&[(0.0, 2.0)]);
        assert_eq!(solver().solve(&b, &f), Outcome::Unsat);
    }
}
