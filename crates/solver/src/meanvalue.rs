//! Mean-value-form infeasibility test — an optional second contractor.
//!
//! For a constraint `g(x) REL 0` on a box `B` with midpoint `m`, the
//! mean-value theorem gives the enclosure
//!
//! ```text
//! g(B) ⊆ g(m) + Σ_i (∂g/∂x_i)(B) · (B_i − m_i)
//! ```
//!
//! with every term evaluated in interval arithmetic (so the bound is
//! rigorous). On narrow boxes this first-order form is frequently *tighter*
//! than the natural interval extension HC4 uses — the classic way to beat
//! the dependency problem — at the cost of evaluating the symbolic gradient.
//! `DeltaSolver` can enable it as an extra pruning test; the
//! `ablation_mean_value` benchmark measures the trade-off.
//!
//! Since the compile-once rework, the symbolic differentiation and the
//! gradient tapes are built a single time per [`crate::CompiledFormula`]
//! (lazily, on the first mean-value call) and shared across every box. The
//! [`MeanValue`] type here is the owning convenience wrapper around that
//! machinery, mirroring [`crate::contract::Hc4`].

use crate::boxdom::BoxDomain;
use crate::compile::{CompiledFormula, SolveScratch};
use crate::formula::Formula;

/// Prepared mean-value tester for a fixed formula: compiled gradients +
/// private scratch in one value.
pub struct MeanValue {
    compiled: CompiledFormula,
    scratch: SolveScratch,
}

impl MeanValue {
    /// Differentiate every atom with respect to every free variable (once).
    pub fn new(formula: &Formula) -> MeanValue {
        MeanValue {
            compiled: CompiledFormula::compile(formula),
            scratch: SolveScratch::new(),
        }
    }

    /// True when the mean-value enclosure *proves* some atom unsatisfiable on
    /// the box (sound pruning signal).
    pub fn certainly_infeasible(&mut self, b: &BoxDomain) -> bool {
        self.compiled.mv_certainly_infeasible(b, &mut self.scratch)
    }

    /// Interval-Newton-style contraction: for each atom `g REL 0` and each
    /// variable `x_i`, solve the first-order relaxation
    ///
    /// ```text
    /// g(m) + g_i'(B)·(x_i − m_i) + Σ_{j≠i} g_j'(B)·(B_j − m_j)  ∈  allowed
    /// ```
    ///
    /// for `x_i` with extended interval division. Returns `None` when some
    /// variable's domain becomes empty (box proven infeasible), otherwise the
    /// (possibly) narrowed box. Sound: every solution of the constraint in
    /// `b` satisfies the relaxation, so it survives the contraction.
    pub fn contract(&mut self, b: &BoxDomain) -> Option<BoxDomain> {
        self.compiled.mv_contract(b, &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, Rel};
    use xcv_expr::var;

    #[test]
    fn tighter_than_natural_extension_on_dependency() {
        // g(x) = x - x² on [0.4, 0.6]: natural extension gives
        // [0.4,0.6] - [0.16,0.36] = [0.04, 0.44]; the true range is
        // [0.24, 0.2496]. Mean value: g(0.5) = 0.25, g' = 1-2x ∈ [-0.2, 0.2],
        // enclosure 0.25 + [-0.2,0.2]*[-0.1,0.1] = [0.23, 0.27]. So the
        // constraint g <= 0.2 is refuted by MV but not by natural extension.
        let g = var(0) - var(0).powi(2);
        let f = Formula::single(Atom::new(g.clone() - 0.2, Rel::Le));
        let b = BoxDomain::from_bounds(&[(0.4, 0.6)]);
        // Natural extension cannot refute:
        let natural = (g - 0.2).eval_interval(&[b.dim(0)]);
        assert!(natural.lo < 0.0, "natural extension too wide: {natural:?}");
        // Mean value refutes:
        let mut mv = MeanValue::new(&f);
        assert!(mv.certainly_infeasible(&b));
    }

    #[test]
    fn never_prunes_a_feasible_box() {
        // g(x, y) = x² + y² - 1 <= 0 with the feasible point (0.5, 0.5).
        let g = var(0).powi(2) + var(1).powi(2) - 1.0;
        let f = Formula::single(Atom::new(g, Rel::Le));
        let mut mv = MeanValue::new(&f);
        let b = BoxDomain::from_bounds(&[(0.3, 0.7), (0.3, 0.7)]);
        assert!(!mv.certainly_infeasible(&b));
    }

    #[test]
    fn prunes_clearly_infeasible_box() {
        // x + y >= 0 on a box where x + y <= -1 everywhere.
        let f = Formula::single(Atom::new(var(0) + var(1), Rel::Ge));
        let mut mv = MeanValue::new(&f);
        let b = BoxDomain::from_bounds(&[(-2.0, -1.0), (-2.0, -0.5)]);
        assert!(mv.certainly_infeasible(&b));
    }

    #[test]
    fn newton_contraction_narrows_linear() {
        // x + 1 <= 0 on [-5, 5]: the first-order form is exact for linear
        // constraints, so contraction should cut to [-5, -1].
        let f = Formula::single(Atom::new(var(0) + 1.0, Rel::Le));
        let mut mv = MeanValue::new(&f);
        let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let nb = mv.contract(&b).expect("feasible");
        assert!(nb.dim(0).hi <= -1.0 + 1e-9, "{:?}", nb.dim(0));
        assert!(nb.dim(0).lo <= -5.0 + 1e-9);
    }

    #[test]
    fn newton_contraction_never_loses_solutions() {
        // x² - 2 <= 0: solutions are |x| <= √2; every feasible sample must
        // survive contraction of a box with nonzero gradient (x in [0.5, 5]).
        let f = Formula::single(Atom::new(var(0).powi(2) - 2.0, Rel::Le));
        let mut mv = MeanValue::new(&f);
        let b = BoxDomain::from_bounds(&[(0.5, 5.0)]);
        let nb = mv.contract(&b).expect("feasible");
        for i in 0..50 {
            let x = 0.5 + (2.0f64.sqrt() - 0.5) * (i as f64) / 49.0;
            if x * x <= 2.0 {
                assert!(nb.contains_point(&[x]), "lost {x}");
            }
        }
        // And it actually narrowed the infeasible tail.
        assert!(nb.dim(0).hi < 5.0);
    }

    #[test]
    fn newton_contraction_detects_infeasible() {
        // x >= 0 and x + 10 <= 0 cannot hold.
        let f = Formula::new(vec![
            Atom::new(var(0), Rel::Ge),
            Atom::new(var(0) + 10.0, Rel::Le),
        ]);
        let mut mv = MeanValue::new(&f);
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0)]);
        assert!(mv.contract(&b).is_none());
    }

    #[test]
    fn domain_violation_at_midpoint_is_no_information() {
        // ln(x) on a box straddling 0: midpoint may be <= 0; must not panic
        // and must not claim infeasibility it cannot prove.
        let f = Formula::single(Atom::new(var(0).ln(), Rel::Le));
        let mut mv = MeanValue::new(&f);
        let b = BoxDomain::from_bounds(&[(-1.0, 0.5)]);
        let _ = mv.certainly_infeasible(&b); // just must be sound / not panic
        let feasible = BoxDomain::from_bounds(&[(0.1, 0.9)]);
        assert!(!mv.certainly_infeasible(&feasible));
    }
}
