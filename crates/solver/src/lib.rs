//! A δ-complete decision procedure for conjunctions of nonlinear real
//! constraints — the dReal substitute used by the XCVerifier reproduction.
//!
//! dReal (Gao, Kong, Clarke; CADE 2013) decides nonlinear formulas over the
//! reals *up to a numerical relaxation δ*: it answers either
//!
//! * **UNSAT** — the formula has no real solution (a sound proof), or
//! * **δ-SAT** — the δ-weakening of the formula is satisfiable, witnessed by
//!   a model point (which may fail the *exact* formula; XCVerifier re-checks
//!   it and reports "inconclusive" when it does).
//!
//! Internally dReal is an interval constraint propagation (ICP) loop:
//! contract the search box against each constraint with interval arithmetic,
//! and branch when contraction stalls. [`DeltaSolver`] implements exactly
//! that architecture, organized as **compile-once solve sessions** — the
//! standard interval-solver split (dReal/IBEX build contractors once per
//! problem, apply them per box):
//!
//! * [`CompiledFormula::compile`] — lowers a [`Formula`] to flat tapes *one
//!   time*: a shared [`xcv_expr::IntervalTape`] for the HC4 forward/backward
//!   passes, per-atom f64 [`xcv_expr::Tape`]s for midpoint model checks and
//!   branch scoring, and (lazily) the symbolic mean-value gradients;
//! * [`DeltaSolver::solve_compiled`] — branch-and-prune over a *borrowed*
//!   compiled formula plus a reusable per-worker [`SolveScratch`], with a
//!   node *and* wall-clock budget, returning [`Outcome::Unsat`],
//!   [`Outcome::DeltaSat`] or [`Outcome::Timeout`] — the same three-way
//!   interface Algorithm 1 of the paper consumes;
//! * [`DeltaSolver::solve`] — the original one-shot signature, kept as a
//!   thin compile-then-solve wrapper;
//! * [`contract::Hc4`] / [`MeanValue`] — owning wrappers (compiled program +
//!   private scratch) for callers contracting a single formula in place.
//!
//! The verifier's whole box tree shares one `CompiledFormula` per encoded
//! problem; [`compile_count`] exposes a process-wide compilation counter so
//! tests can assert that per-box solving never compiles.
//!
//! # The contractor escalation ladder
//!
//! Plain branch-and-prune burns its budget on boxes where HC4 stalls — the
//! bench matrix's dominant cost is *undecided work*, whole rows timing out
//! with the node budget spent on splits that never decide. [`Escalation`]
//! replaces the flat budget with a per-box ladder:
//!
//! * **rung 0** — the always-on HC4 round (plus [`MeanValue`] when
//!   enabled); boxes that contract well never escalate and behave exactly
//!   as with the ladder off;
//! * **rung 1** — interval-Newton (Gauss–Seidel) sweeps over the compiled
//!   per-axis gradient tapes ([`xcv_expr::newton`]), entered when the
//!   rung-0 contraction gain falls below [`Escalation::stall_gain`]. The
//!   mean-value enclosure test refutes boxes the natural extension cannot,
//!   and the row solves cut boxes where a gradient has constant sign;
//! * **rung 2** — 3B slab shaving: probe slabs at the box faces and
//!   re-prove them infeasible with dirty-cone (`forward_masked`) passes,
//!   narrowing faces HC4 cannot move; successful shaves double the next
//!   slab (CID-style dichotomy).
//!
//! Escalation is *gated* so it pays for itself: only nodes at depth ≤
//! [`Escalation::depth_cap`] escalate (a contraction high in the tree is
//! inherited by its whole subtree; deep stalled nodes are legion and each
//! matters little), and rung 1 only fires on boxes narrower than
//! [`Escalation::newton_width_cap`], where the first-order mean-value
//! enclosure is tight. Subtrees the ladder never touched are *pristine* —
//! their geometry is bit-identical to the rung-0 search — and skip the
//! flip-prevention machinery entirely, so arming the ladder costs nothing
//! on boxes that never stall.
//!
//! ```
//! use xcv_solver::{DeltaSolver, Escalation, SolveBudget};
//!
//! // The ladder is off by default; turn it on per solver.
//! let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(800))
//!     .with_escalation(Escalation::full());
//! # let _ = solver;
//! ```
//!
//! Escalation is a pure per-box function driven through the shared
//! `step_after_contract` step, so the scalar DFS and the batched frontier
//! engine stay bit-identical at any batch width, and every ladder decision
//! is replayable: Newton prunes/contractions and shaved slabs are recorded
//! as [`TraceEvent`]s and serialize into `xcv-cert` certificates the
//! solver-free checker re-derives. Campaigns opt in with
//! `CampaignBuilder::escalation` (cheap pairs are demoted to rung 0 by the
//! measured cost model).
//!
//! Soundness invariant: a box is discarded only when interval reasoning
//! *proves* it contains no solution — HC4, the Newton enclosure/row
//! solves, and slab refutations are all outward-rounded proofs — so
//! `Unsat` is trustworthy regardless of rounding; `DeltaSat` models are
//! validated downstream.

mod boxdom;
mod compile;
pub mod contract;
mod formula;
pub mod meanvalue;
mod solve;

pub use boxdom::BoxDomain;
pub use compile::{compile_count, CompiledAtom, CompiledFormula, SolveScratch};
pub use formula::{Atom, Formula, Rel};
pub use meanvalue::MeanValue;
pub use solve::{
    DeltaSolver, Escalation, Outcome, SolveBudget, SolveStats, SolveTrace, TraceEvent,
};
