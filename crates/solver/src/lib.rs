//! A δ-complete decision procedure for conjunctions of nonlinear real
//! constraints — the dReal substitute used by the XCVerifier reproduction.
//!
//! dReal (Gao, Kong, Clarke; CADE 2013) decides nonlinear formulas over the
//! reals *up to a numerical relaxation δ*: it answers either
//!
//! * **UNSAT** — the formula has no real solution (a sound proof), or
//! * **δ-SAT** — the δ-weakening of the formula is satisfiable, witnessed by
//!   a model point (which may fail the *exact* formula; XCVerifier re-checks
//!   it and reports "inconclusive" when it does).
//!
//! Internally dReal is an interval constraint propagation (ICP) loop:
//! contract the search box against each constraint with interval arithmetic,
//! and branch when contraction stalls. [`DeltaSolver`] implements exactly
//! that architecture:
//!
//! * [`contract::Hc4`] — the HC4-revise forward–backward contractor over the
//!   shared expression DAG;
//! * [`DeltaSolver::solve`] — branch-and-prune with a node *and* wall-clock
//!   budget, returning [`Outcome::Unsat`], [`Outcome::DeltaSat`] or
//!   [`Outcome::Timeout`] — the same three-way interface Algorithm 1 of the
//!   paper consumes.
//!
//! Soundness invariant: a box is discarded only when interval reasoning
//! *proves* it contains no solution, so `Unsat` is trustworthy regardless of
//! rounding; `DeltaSat` models are validated downstream.

mod boxdom;
pub mod contract;
mod formula;
pub mod meanvalue;
mod solve;

pub use boxdom::BoxDomain;
pub use formula::{Atom, Formula, Rel};
pub use meanvalue::MeanValue;
pub use solve::{DeltaSolver, Outcome, SolveBudget, SolveStats};
