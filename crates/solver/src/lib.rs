//! A δ-complete decision procedure for conjunctions of nonlinear real
//! constraints — the dReal substitute used by the XCVerifier reproduction.
//!
//! dReal (Gao, Kong, Clarke; CADE 2013) decides nonlinear formulas over the
//! reals *up to a numerical relaxation δ*: it answers either
//!
//! * **UNSAT** — the formula has no real solution (a sound proof), or
//! * **δ-SAT** — the δ-weakening of the formula is satisfiable, witnessed by
//!   a model point (which may fail the *exact* formula; XCVerifier re-checks
//!   it and reports "inconclusive" when it does).
//!
//! Internally dReal is an interval constraint propagation (ICP) loop:
//! contract the search box against each constraint with interval arithmetic,
//! and branch when contraction stalls. [`DeltaSolver`] implements exactly
//! that architecture, organized as **compile-once solve sessions** — the
//! standard interval-solver split (dReal/IBEX build contractors once per
//! problem, apply them per box):
//!
//! * [`CompiledFormula::compile`] — lowers a [`Formula`] to flat tapes *one
//!   time*: a shared [`xcv_expr::IntervalTape`] for the HC4 forward/backward
//!   passes, per-atom f64 [`xcv_expr::Tape`]s for midpoint model checks and
//!   branch scoring, and (lazily) the symbolic mean-value gradients;
//! * [`DeltaSolver::solve_compiled`] — branch-and-prune over a *borrowed*
//!   compiled formula plus a reusable per-worker [`SolveScratch`], with a
//!   node *and* wall-clock budget, returning [`Outcome::Unsat`],
//!   [`Outcome::DeltaSat`] or [`Outcome::Timeout`] — the same three-way
//!   interface Algorithm 1 of the paper consumes;
//! * [`DeltaSolver::solve`] — the original one-shot signature, kept as a
//!   thin compile-then-solve wrapper;
//! * [`contract::Hc4`] / [`MeanValue`] — owning wrappers (compiled program +
//!   private scratch) for callers contracting a single formula in place.
//!
//! The verifier's whole box tree shares one `CompiledFormula` per encoded
//! problem; [`compile_count`] exposes a process-wide compilation counter so
//! tests can assert that per-box solving never compiles.
//!
//! Soundness invariant: a box is discarded only when interval reasoning
//! *proves* it contains no solution, so `Unsat` is trustworthy regardless of
//! rounding; `DeltaSat` models are validated downstream.

mod boxdom;
mod compile;
pub mod contract;
mod formula;
pub mod meanvalue;
mod solve;

pub use boxdom::BoxDomain;
pub use compile::{compile_count, CompiledAtom, CompiledFormula, SolveScratch};
pub use formula::{Atom, Formula, Rel};
pub use meanvalue::MeanValue;
pub use solve::{DeltaSolver, Outcome, SolveBudget, SolveStats, SolveTrace, TraceEvent};
