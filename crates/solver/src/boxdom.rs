//! Axis-aligned boxes (products of intervals) — the solver's search regions
//! and the verifier's domains.

use xcv_interval::Interval;

/// A box: one interval per variable, indexed consistently with
/// `xcv_expr::Kind::Var` indices.
#[derive(Clone, Debug, PartialEq)]
pub struct BoxDomain {
    dims: Vec<Interval>,
}

impl BoxDomain {
    pub fn new(dims: Vec<Interval>) -> Self {
        BoxDomain { dims }
    }

    /// A box from `(lo, hi)` pairs.
    pub fn from_bounds(bounds: &[(f64, f64)]) -> Self {
        BoxDomain {
            dims: bounds
                .iter()
                .map(|&(lo, hi)| Interval::new(lo, hi))
                .collect(),
        }
    }

    /// The Pederson–Burke search box of a typed variable space: one
    /// dimension per [`xcv_expr::Axis`], using the axis bounds.
    pub fn from_var_space(space: &xcv_expr::VarSpace) -> Self {
        BoxDomain::from_bounds(&space.pb_box())
    }

    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    pub fn dims(&self) -> &[Interval] {
        &self.dims
    }

    pub fn dim(&self, i: usize) -> Interval {
        self.dims[i]
    }

    pub fn set_dim(&mut self, i: usize, v: Interval) {
        self.dims[i] = v;
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|d| d.is_empty())
    }

    /// The widest dimension and its width.
    pub fn widest_dim(&self) -> (usize, f64) {
        let mut best = (0, 0.0);
        for (i, d) in self.dims.iter().enumerate() {
            let w = d.width();
            if w > best.1 {
                best = (i, w);
            }
        }
        best
    }

    /// Maximum width over dimensions.
    pub fn max_width(&self) -> f64 {
        self.dims.iter().map(|d| d.width()).fold(0.0, f64::max)
    }

    /// The midpoint of every dimension.
    pub fn midpoint(&self) -> Vec<f64> {
        self.dims.iter().map(|d| d.midpoint()).collect()
    }

    /// Does the box contain this point (componentwise)?
    pub fn contains_point(&self, p: &[f64]) -> bool {
        p.len() == self.dims.len() && self.dims.iter().zip(p).all(|(d, &x)| d.contains(x))
    }

    /// Bisect along the widest dimension.
    pub fn bisect_widest(&self) -> (BoxDomain, BoxDomain) {
        let (i, _) = self.widest_dim();
        self.bisect_dim(i)
    }

    /// Bisect along dimension `i`.
    pub fn bisect_dim(&self, i: usize) -> (BoxDomain, BoxDomain) {
        let (l, r) = self.dims[i].bisect();
        let mut left = self.clone();
        let mut right = self.clone();
        left.dims[i] = l;
        right.dims[i] = r;
        (left, right)
    }

    /// Split *every* dimension at its midpoint into `2^n` sub-boxes — the
    /// `split(D)` operation of the paper's Algorithm 1.
    pub fn split_all(&self) -> Vec<BoxDomain> {
        let n = self.dims.len();
        let halves: Vec<(Interval, Interval)> = self.dims.iter().map(|d| d.bisect()).collect();
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0..(1u32 << n) {
            let dims: Vec<Interval> = (0..n)
                .map(|i| {
                    if mask & (1 << i) == 0 {
                        halves[i].0
                    } else {
                        halves[i].1
                    }
                })
                .collect();
            let b = BoxDomain::new(dims);
            if !b.is_empty() {
                out.push(b);
            }
        }
        out
    }

    /// Componentwise intersection.
    pub fn intersect(&self, other: &BoxDomain) -> BoxDomain {
        debug_assert_eq!(self.ndim(), other.ndim());
        BoxDomain {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        }
    }
}

impl std::fmt::Display for BoxDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widest_and_bisect() {
        let b = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 4.0)]);
        assert_eq!(b.widest_dim().0, 1);
        let (l, r) = b.bisect_widest();
        assert_eq!(l.dim(0), b.dim(0));
        assert!(l.dim(1).hi <= r.dim(1).lo + 1e-12);
        assert!((l.dim(1).hi - 2.0).abs() < 1e-12);
    }

    #[test]
    fn split_all_covers() {
        let b = BoxDomain::from_bounds(&[(0.0, 2.0), (0.0, 2.0)]);
        let parts = b.split_all();
        assert_eq!(parts.len(), 4);
        for p in &[(0.5, 0.5), (1.5, 0.5), (0.5, 1.5), (1.5, 1.5)] {
            let pt = [p.0, p.1];
            assert!(parts.iter().any(|q| q.contains_point(&pt)));
        }
    }

    #[test]
    fn contains_point_boundary() {
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        assert!(b.contains_point(&[0.0]));
        assert!(b.contains_point(&[1.0]));
        assert!(!b.contains_point(&[1.1]));
        assert!(!b.contains_point(&[0.5, 0.5])); // wrong arity
    }

    #[test]
    fn intersection() {
        let a = BoxDomain::from_bounds(&[(0.0, 2.0)]);
        let b = BoxDomain::from_bounds(&[(1.0, 3.0)]);
        let c = a.intersect(&b);
        assert_eq!(c.dim(0), xcv_interval::interval(1.0, 2.0));
        let d = a.intersect(&BoxDomain::from_bounds(&[(5.0, 6.0)]));
        assert!(d.is_empty());
    }

    #[test]
    fn midpoint_inside() {
        let b = BoxDomain::from_bounds(&[(0.0, 1.0), (-2.0, 2.0)]);
        assert!(b.contains_point(&b.midpoint()));
    }
}
