//! Constraint formulas: conjunctions of sign atoms over expressions.
//!
//! The local conditions of Section II of the paper are single inequalities
//! `e(rs, s, …) ≥ 0` (after moving everything to one side), so a formula here
//! is a conjunction of [`Atom`]s and negation is performed atom-wise by the
//! encoder (¬(e ≥ 0) = e < 0).

use xcv_expr::Expr;
use xcv_interval::Interval;

/// Sign relation of an atom's expression against zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rel {
    /// `e <= 0`
    Le,
    /// `e < 0`
    Lt,
    /// `e >= 0`
    Ge,
    /// `e > 0`
    Gt,
}

impl Rel {
    /// The negated relation.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Le => Rel::Gt,
            Rel::Lt => Rel::Ge,
            Rel::Ge => Rel::Lt,
            Rel::Gt => Rel::Le,
        }
    }

    /// The set of allowed values (closure of the relation — sound for
    /// pruning: a strict relation's solutions are inside the closed set).
    pub fn allowed(self) -> Interval {
        match self {
            Rel::Le | Rel::Lt => Interval::new(f64::NEG_INFINITY, 0.0),
            Rel::Ge | Rel::Gt => Interval::new(0.0, f64::INFINITY),
        }
    }

    /// Exact satisfaction at a value.
    pub fn holds(self, v: f64) -> bool {
        match self {
            Rel::Le => v <= 0.0,
            Rel::Lt => v < 0.0,
            Rel::Ge => v >= 0.0,
            Rel::Gt => v > 0.0,
        }
    }

    /// δ-relaxed satisfaction at a value (the dReal weakening: each atom's
    /// bound is loosened by δ).
    pub fn holds_delta(self, v: f64, delta: f64) -> bool {
        if v.is_nan() {
            return false;
        }
        match self {
            Rel::Le | Rel::Lt => v <= delta,
            Rel::Ge | Rel::Gt => v >= -delta,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Ge => ">=",
            Rel::Gt => ">",
        }
    }
}

/// One constraint: `expr REL 0`.
#[derive(Clone, Debug)]
pub struct Atom {
    pub expr: Expr,
    pub rel: Rel,
}

impl Atom {
    pub fn new(expr: Expr, rel: Rel) -> Self {
        Atom { expr, rel }
    }

    /// `lhs <= rhs` as an atom.
    pub fn le(lhs: &Expr, rhs: &Expr) -> Self {
        Atom::new(lhs - rhs, Rel::Le)
    }

    /// `lhs >= rhs` as an atom.
    pub fn ge(lhs: &Expr, rhs: &Expr) -> Self {
        Atom::new(lhs - rhs, Rel::Ge)
    }

    /// `lhs < rhs` as an atom.
    pub fn lt(lhs: &Expr, rhs: &Expr) -> Self {
        Atom::new(lhs - rhs, Rel::Lt)
    }

    /// `lhs > rhs` as an atom.
    pub fn gt(lhs: &Expr, rhs: &Expr) -> Self {
        Atom::new(lhs - rhs, Rel::Gt)
    }

    /// The negated atom.
    pub fn negate(&self) -> Atom {
        Atom {
            expr: self.expr.clone(),
            rel: self.rel.negate(),
        }
    }

    /// Exact satisfaction at a point (NaN fails every relation).
    pub fn holds_at(&self, point: &[f64]) -> bool {
        match self.expr.eval(point) {
            Ok(v) if !v.is_nan() => self.rel.holds(v),
            _ => false,
        }
    }

    /// δ-relaxed satisfaction at a point.
    pub fn holds_delta_at(&self, point: &[f64], delta: f64) -> bool {
        match self.expr.eval(point) {
            Ok(v) => self.rel.holds_delta(v, delta),
            _ => false,
        }
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} 0", self.expr, self.rel.symbol())
    }
}

/// A conjunction of atoms.
#[derive(Clone, Debug, Default)]
pub struct Formula {
    pub atoms: Vec<Atom>,
}

impl Formula {
    pub fn new(atoms: Vec<Atom>) -> Self {
        Formula { atoms }
    }

    pub fn single(atom: Atom) -> Self {
        Formula { atoms: vec![atom] }
    }

    pub fn and(mut self, atom: Atom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Exact satisfaction at a point.
    pub fn holds_at(&self, point: &[f64]) -> bool {
        self.atoms.iter().all(|a| a.holds_at(point))
    }

    /// δ-relaxed satisfaction at a point.
    pub fn holds_delta_at(&self, point: &[f64], delta: f64) -> bool {
        self.atoms.iter().all(|a| a.holds_delta_at(point, delta))
    }
}

impl std::fmt::Display for Formula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_expr::var;

    #[test]
    fn rel_negation_round_trip() {
        for r in [Rel::Le, Rel::Lt, Rel::Ge, Rel::Gt] {
            assert_eq!(r.negate().negate(), r);
        }
        assert_eq!(Rel::Ge.negate(), Rel::Lt);
    }

    #[test]
    fn rel_holds_semantics() {
        assert!(Rel::Le.holds(0.0));
        assert!(!Rel::Lt.holds(0.0));
        assert!(Rel::Ge.holds(0.0));
        assert!(!Rel::Gt.holds(0.0));
        assert!(Rel::Lt.holds(-1.0));
        assert!(Rel::Gt.holds(1.0));
    }

    #[test]
    fn delta_relaxation() {
        assert!(Rel::Le.holds_delta(0.0005, 1e-3));
        assert!(!Rel::Le.holds_delta(0.01, 1e-3));
        assert!(Rel::Ge.holds_delta(-0.0005, 1e-3));
        assert!(!Rel::Ge.holds_delta(f64::NAN, 1e-3));
    }

    #[test]
    fn atom_builders_and_eval() {
        // x <= 3  ⇔  x - 3 <= 0
        let a = Atom::le(&var(0), &xcv_expr::constant(3.0));
        assert!(a.holds_at(&[2.0]));
        assert!(a.holds_at(&[3.0]));
        assert!(!a.holds_at(&[4.0]));
        let n = a.negate();
        assert!(!n.holds_at(&[3.0]));
        assert!(n.holds_at(&[4.0]));
    }

    #[test]
    fn atom_nan_fails() {
        let a = Atom::new(var(0).ln(), Rel::Ge);
        assert!(!a.holds_at(&[-1.0])); // ln(-1) = NaN
        assert!(a.holds_at(&[2.0]));
    }

    #[test]
    fn formula_conjunction() {
        let f = Formula::single(Atom::ge(&var(0), &xcv_expr::constant(0.0)))
            .and(Atom::le(&var(0), &xcv_expr::constant(1.0)));
        assert!(f.holds_at(&[0.5]));
        assert!(!f.holds_at(&[2.0]));
        assert!(!f.holds_at(&[-0.5]));
    }

    #[test]
    fn allowed_region_closed() {
        assert_eq!(Rel::Lt.allowed(), Interval::new(f64::NEG_INFINITY, 0.0));
        assert_eq!(Rel::Gt.allowed(), Interval::new(0.0, f64::INFINITY));
    }
}
