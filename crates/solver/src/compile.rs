//! Compile-once solve sessions: a [`Formula`] lowered to flat tapes, built
//! one time per problem and shared (immutably) across every box the
//! branch-and-prune search and the verifier recursion visit.
//!
//! The seed architecture rebuilt the HC4 contractor (topo sort, `HashMap`
//! slot maps, op lowering) and — with the mean-value test enabled — re-ran
//! full symbolic differentiation on **every** `solve` call, i.e. on every
//! sub-box of the verifier's recursion. [`CompiledFormula`] hoists all of
//! that to a single compilation step:
//!
//! * one [`IntervalTape`] over every atom's expression (shared subterms
//!   lowered once) drives both the forward interval pass and the in-place
//!   HC4 backward contraction;
//! * one f64 [`Tape`] per atom drives midpoint model checks and branch
//!   scoring without touching the DAG or allocating memo maps;
//! * the mean-value gradients (symbolic differentiation per atom × variable)
//!   are materialized lazily, once, behind a `OnceLock`.
//!
//! All per-box mutable state lives in a caller-owned [`SolveScratch`], so a
//! `CompiledFormula` is `Send + Sync` and one instance serves the whole box
//! tree — each rayon worker brings its own scratch.

use crate::boxdom::BoxDomain;
use crate::contract::Contraction;
use crate::formula::{Atom, Formula, Rel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use xcv_expr::{IntervalTape, Tape, VarSpace};
use xcv_interval::Interval;

/// Global count of compilations — formulas, atoms, and lazily-built
/// mean-value gradient programs — for the compile-once tests: solving N
/// boxes against one [`CompiledFormula`] must not move it.
static COMPILE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Unique id per [`CompiledFormula`] build, keying the f64 register cache
/// in [`SolveScratch`] (clones share the id — their tapes are identical, so
/// cached registers remain valid). Starts at 1; 0 means "cache invalid".
static FORMULA_UID: AtomicU64 = AtomicU64::new(1);

/// Number of tape compilations performed so far, process-wide. Incremented
/// by [`CompiledFormula::compile`], [`CompiledAtom::compile`], and the
/// once-per-formula mean-value gradient build; tests assert it stays flat
/// across per-box solving.
pub fn compile_count() -> u64 {
    COMPILE_COUNT.load(Ordering::Relaxed)
}

/// One compiled sign atom: a flat f64 tape, the slot its expression's value
/// lands in, and the relation. Used for exact model checks (`ψ` validation,
/// midpoint tests) without the allocating recursive `Expr::eval`.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    tape: Tape,
    /// Slot of the atom's expression in `tape` (the last slot for a tape
    /// compiled from one root; an interior slot when the tape is shared with
    /// a [`CompiledFormula`], see [`CompiledFormula::atom_tape`]).
    root: u32,
    rel: Rel,
}

impl CompiledAtom {
    pub fn compile(atom: &Atom) -> CompiledAtom {
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        let (tape, roots) = Tape::compile_multi(std::slice::from_ref(&atom.expr));
        CompiledAtom {
            tape,
            root: roots[0],
            rel: atom.rel,
        }
    }

    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// Exact satisfaction at a point, reusing a caller-owned f64 buffer
    /// (NaN — including unbound variables — fails every relation, matching
    /// [`Atom::holds_at`]).
    pub fn holds_at_with(&self, point: &[f64], buf: &mut Vec<f64>) -> bool {
        buf.resize(self.tape.len(), 0.0);
        self.tape.run(point, buf);
        let v = buf[self.root as usize];
        !v.is_nan() && self.rel.holds(v)
    }

    /// Convenience form that allocates its own buffer.
    pub fn holds_at(&self, point: &[f64]) -> bool {
        let mut buf = Vec::new();
        self.holds_at_with(point, &mut buf)
    }
}

/// Per-atom compiled state inside a [`CompiledFormula`].
#[derive(Debug, Clone)]
struct FormulaAtom {
    /// Root slot of this atom's expression in the shared interval tape.
    root: u32,
    /// Root slot of this atom's expression in the shared f64 tape.
    froot: u32,
    rel: Rel,
    /// Closed allowed set of the relation (pre-resolved from `rel`).
    allowed: Interval,
}

/// Lazily-built mean-value data: per atom, one interval tape over
/// `[g, ∂g/∂axis…]` with the gradient roots *axis-indexed*.
#[derive(Debug)]
struct MvAtom {
    rel: Rel,
    itape: IntervalTape,
    /// `grad_roots[axis]` is the tape-root index of `∂g/∂axis` (root 0 is
    /// `g` itself), dense over the formula's variable space; `None` for an
    /// axis the atom's expression does not mention (gradient ≡ 0).
    grad_roots: Vec<Option<usize>>,
    /// The same gradient roots as sparse `(axis, root)` pairs in ascending
    /// axis order — the layout [`xcv_expr::newton::NewtonAtom`] consumes,
    /// and the layout certificates serialize (the checker reconstructs
    /// `root = i + 1` from the pair position, which holds by construction).
    grad_pairs: Vec<(u32, u32)>,
    /// The expression mentions a variable beyond the space — the first-order
    /// form then carries no information (dropping the term would tighten
    /// unsoundly).
    overflow: bool,
}

#[derive(Debug, Default)]
struct MeanValueProgram {
    atoms: Vec<MvAtom>,
}

/// A formula compiled once for repeated solving. Immutable and shareable;
/// all per-box state lives in [`SolveScratch`].
#[derive(Debug)]
pub struct CompiledFormula {
    source: Formula,
    /// The typed variable space of the problem (set by
    /// [`CompiledFormula::compile_in`]); mean-value gradients and witness
    /// labels index by its axes. `None` for anonymous formulas compiled with
    /// [`CompiledFormula::compile`].
    space: Option<VarSpace>,
    itape: IntervalTape,
    /// One f64 tape over every atom's expression (shared subterms evaluated
    /// once per point); atoms read their values at `FormulaAtom::froot`.
    ftape: Tape,
    atoms: Vec<FormulaAtom>,
    /// Bitmask of the variables the interval program actually computes with
    /// (post constant folding) — the formula's *support set*. Axes outside
    /// it can never affect satisfaction, so the solver neither splits them
    /// nor lets their width keep a box from being δ-decided.
    support: u64,
    /// `cone_cost[m]` ≈ relative forward-pass cost of recomputing dirty
    /// mask `m` (weighted per-instruction — an `exp` slot costs an order of
    /// magnitude more than an `add`), precomputed for every axis subset so
    /// the batched engine's snapshot-refresh decision is two lookups
    /// instead of three dependency scans. Indexed by the low
    /// `cone_axes` bits of the mask; empty when the space is too wide.
    cone_cost: Vec<f64>,
    cone_axes: u32,
    /// Cache key for the f64 register file in [`SolveScratch`] (see
    /// [`FORMULA_UID`]).
    uid: u64,
    /// Forward/backward rounds per HC4 contraction call.
    max_rounds: usize,
    mv: OnceLock<MeanValueProgram>,
}

impl Clone for CompiledFormula {
    fn clone(&self) -> Self {
        // The OnceLock restarts empty; gradients rebuild lazily if needed.
        CompiledFormula {
            source: self.source.clone(),
            space: self.space.clone(),
            itape: self.itape.clone(),
            ftape: self.ftape.clone(),
            atoms: self.atoms.clone(),
            support: self.support,
            cone_cost: self.cone_cost.clone(),
            cone_axes: self.cone_axes,
            uid: self.uid,
            max_rounds: self.max_rounds,
            mv: OnceLock::new(),
        }
    }
}

impl CompiledFormula {
    /// Lower `formula` to flat tapes. This is the *only* place the expression
    /// DAG is traversed; everything downstream is dense index arithmetic.
    pub fn compile(formula: &Formula) -> CompiledFormula {
        Self::build(formula, None)
    }

    /// [`CompiledFormula::compile`] with a typed variable space attached:
    /// the encoder passes the functional's `var_space()` so the compiled
    /// problem knows what each variable index means.
    pub fn compile_in(formula: &Formula, space: VarSpace) -> CompiledFormula {
        Self::build(formula, Some(space))
    }

    fn build(formula: &Formula, space: Option<VarSpace>) -> CompiledFormula {
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        let roots: Vec<xcv_expr::Expr> = formula.atoms.iter().map(|a| a.expr.clone()).collect();
        let itape = IntervalTape::compile(&roots);
        let (ftape, froots) = Tape::compile_multi(&roots);
        let atoms = formula
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| FormulaAtom {
                root: itape.root_slot(i),
                froot: froots[i],
                rel: a.rel,
                allowed: a.rel.allowed(),
            })
            .collect();
        let support = itape.var_mask();
        // Weighted cone costs for every axis subset (PB problems top out at
        // 4 axes, so the table is tiny; wider spaces fall back to scanning).
        let top = 64 - support.leading_zeros();
        let (cone_axes, cone_cost) = if support != u64::MAX && top <= 8 {
            (top, (0..1u64 << top).map(|m| itape.cone_cost(m)).collect())
        } else {
            (0, Vec::new())
        };
        CompiledFormula {
            source: formula.clone(),
            space,
            itape,
            ftape,
            atoms,
            support,
            cone_cost,
            cone_axes,
            uid: FORMULA_UID.fetch_add(1, Ordering::Relaxed),
            max_rounds: 3,
            mv: OnceLock::new(),
        }
    }

    /// The formula this was compiled from.
    pub fn formula(&self) -> &Formula {
        &self.source
    }

    /// The typed variable space, when one was attached at compile time.
    pub fn var_space(&self) -> Option<&VarSpace> {
        self.space.as_ref()
    }

    /// Number of variable axes the mean-value program is indexed by: the
    /// attached space's dimension, or (for anonymous formulas) one past the
    /// highest variable index any atom mentions.
    fn mv_nvars(&self) -> usize {
        match &self.space {
            Some(s) => s.ndim(),
            None => self
                .source
                .atoms
                .iter()
                .flat_map(|a| a.expr.free_vars())
                .map(|v| v as usize + 1)
                .max()
                .unwrap_or(0),
        }
    }

    /// Re-expose atom `i`'s slice of the shared f64 tape as a standalone
    /// [`CompiledAtom`] under a caller-chosen relation. The encoder derives
    /// the `ψ` checker from the already-lowered `¬ψ` program this way (a
    /// negated atom shares its expression and differs only in relation), so
    /// each cell is lowered exactly once — no `COMPILE_COUNT` bump, cloning
    /// a flat instruction vector is not a compilation.
    pub fn atom_tape(&self, i: usize, rel: Rel) -> CompiledAtom {
        CompiledAtom {
            tape: self.ftape.clone(),
            root: self.atoms[i].froot,
            rel,
        }
    }

    /// Slots in the shared interval tape (distinct DAG nodes).
    pub fn interval_slots(&self) -> usize {
        self.itape.len()
    }

    /// The shared interval tape (for the batched solver's SoA passes).
    pub(crate) fn itape(&self) -> &IntervalTape {
        &self.itape
    }

    /// The shared interval tape over every atom's expression: root `i` is
    /// atom `i`'s expression. Certificate emission serializes this
    /// ([`IntervalTape::to_portable`]) so an independent checker can replay
    /// contractions without the expression DAG.
    pub fn interval_tape(&self) -> &IntervalTape {
        &self.itape
    }

    /// The relation of each compiled atom, in tape-root order (atom `i`
    /// constrains `interval_tape()` root `i`).
    pub fn atom_rels(&self) -> Vec<Rel> {
        self.atoms.iter().map(|a| a.rel).collect()
    }

    /// Forward/backward rounds one [`CompiledFormula::contract`] call runs.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Weighted forward cost of recomputing dirty mask `mask` (precomputed
    /// per axis subset; see `IntervalTape::cone_cost`).
    pub(crate) fn cone_cost(&self, mask: u64) -> f64 {
        if self.cone_axes > 0 && mask >> self.cone_axes == 0 {
            self.cone_cost[mask as usize]
        } else {
            self.itape.cone_cost(mask)
        }
    }

    /// Bitmask of the variables the compiled program mentions — the
    /// formula's support set. All-ones when any variable index is `>= 64`
    /// (never the case for PB problems, whose arity tops out at 4).
    pub fn support_mask(&self) -> u64 {
        self.support
    }

    /// Does the compiled program depend on box axis `i`? Axes `>= 64` are
    /// conservatively treated as supported (the mask saturates there).
    pub fn supports_axis(&self, i: usize) -> bool {
        i >= 64 || self.support & (1u64 << i) != 0
    }

    /// The box width that matters for δ-decisions: the maximum width over
    /// the *supported* axes. An axis the formula never mentions cannot
    /// affect satisfaction, so its width must not keep a box from being
    /// declared δ-SAT (nor ever be split — see
    /// [`CompiledFormula::bisect_supported`]). Falls back to the plain
    /// maximum width when the formula mentions none of the box's axes
    /// (constant formulas), preserving the legacy behaviour.
    pub fn split_width(&self, b: &BoxDomain) -> f64 {
        let mut any = false;
        let mut wmax = 0.0f64;
        for i in 0..b.ndim() {
            if self.supports_axis(i) {
                any = true;
                wmax = wmax.max(b.dim(i).width());
            }
        }
        if any {
            wmax
        } else {
            b.max_width()
        }
    }

    /// Bisect `b` along its widest *supported* axis (ties broken toward the
    /// lower index, like `BoxDomain::widest_dim`), so a cell never splits an
    /// axis its expression does not mention — a ζ-free atom on a 4-D spin
    /// domain no longer halves ζ. Falls back to the widest axis overall for
    /// constant formulas. Returns the two halves and the split axis.
    pub fn bisect_supported(&self, b: &BoxDomain) -> (BoxDomain, BoxDomain, u32) {
        let axis = self.split_axis(b);
        let (l, r) = b.bisect_dim(axis as usize);
        (l, r, axis)
    }

    /// The axis [`CompiledFormula::bisect_supported`] would split: the
    /// widest supported axis (ties toward the lower index), falling back
    /// to the widest axis overall for constant formulas. Exposed separately
    /// so the rung-2 shaver can target the split axis without building the
    /// two halves.
    pub fn split_axis(&self, b: &BoxDomain) -> u32 {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..b.ndim() {
            if self.supports_axis(i) {
                let w = b.dim(i).width();
                match best {
                    Some((_, bw)) if w <= bw => {}
                    _ => best = Some((i, w)),
                }
            }
        }
        best.map(|(i, _)| i).unwrap_or_else(|| b.widest_dim().0) as u32
    }

    /// Run the shared f64 tape at `point`, filling the scratch register
    /// file — *incrementally* when the registers still hold this tape's
    /// image of a previous point: only slots depending on changed
    /// coordinates (bitwise compare; `-0.0` and `0.0` divide differently)
    /// are recomputed, bit-identically to a full run. Branch scoring makes
    /// this pay on every split — the two half-box midpoints differ from
    /// the parent box's midpoint only on the split axis, so the second and
    /// third tape runs touch one dependency cone each.
    fn run_ftape(&self, point: &[f64], scratch: &mut SolveScratch) {
        let n = self.ftape.len();
        if scratch.fcache
            && scratch.fpoint_uid == self.uid
            && scratch.fvals.len() == n
            && scratch.fpoint.len() == point.len()
        {
            let mut mask = 0u64;
            for (i, (&p, old)) in point.iter().zip(scratch.fpoint.iter_mut()).enumerate() {
                let bits = p.to_bits();
                if bits != *old {
                    mask |= if i < 64 { 1 << i } else { u64::MAX };
                    *old = bits;
                }
            }
            if mask != 0 {
                self.ftape.run_masked(point, mask, &mut scratch.fvals);
            }
            return;
        }
        scratch.fvals.resize(n, 0.0);
        self.ftape.run(point, &mut scratch.fvals);
        scratch.fpoint.clear();
        scratch.fpoint.extend(point.iter().map(|p| p.to_bits()));
        scratch.fpoint_uid = self.uid;
    }

    /// Exact satisfaction of every atom at a point (tape-based
    /// [`Formula::holds_at`]; one pass evaluates shared subterms once).
    pub fn holds_at(&self, point: &[f64], scratch: &mut SolveScratch) -> bool {
        self.run_ftape(point, scratch);
        self.atoms.iter().all(|a| {
            let v = scratch.fvals[a.froot as usize];
            !v.is_nan() && a.rel.holds(v)
        })
    }

    /// Interval-*certified* satisfaction of every atom at a point: the
    /// outward-rounded enclosure of each atom over the degenerate point box
    /// must lie inside the atom's closed allowed set. `true` is a proof
    /// that the exact formula holds at `point`; `false` only means "not
    /// provable here". The plain f64 [`CompiledFormula::holds_at`] can be
    /// fooled by rounding near an atom bound (e.g. the `ln rs` cancellation
    /// of the correlation functionals as `rs → 0`); this check cannot, so
    /// the escalation ladder uses it to keep midpoint δ-Sat decisions from
    /// contradicting a sound rung-0 Unsat.
    pub fn holds_at_certified(&self, point: &[f64], scratch: &mut SolveScratch) -> bool {
        scratch.cert_point.clear();
        scratch
            .cert_point
            .extend(point.iter().map(|&p| Interval::point(p)));
        ensure_slots(&mut scratch.cert_vals, self.itape.len());
        self.itape
            .forward(&scratch.cert_point, &mut scratch.cert_vals);
        self.atoms.iter().all(|a| {
            let v = scratch.cert_vals[a.root as usize];
            // Both enclosure endpoints must satisfy the relation itself (not
            // just its closed allowed set): a strict atom is not proven by
            // an enclosure touching the bound.
            !v.is_empty() && a.rel.holds(v.lo) && a.rel.holds(v.hi)
        })
    }

    /// Branch-scoring heuristic: the worst signed violation over atoms at a
    /// point (0 when all atoms hold; +∞ on NaN). Smaller is more promising.
    pub fn violation_score(&self, point: &[f64], scratch: &mut SolveScratch) -> f64 {
        self.run_ftape(point, scratch);
        let mut worst = 0.0f64;
        for a in &self.atoms {
            let v = scratch.fvals[a.froot as usize];
            if v.is_nan() {
                return f64::INFINITY;
            }
            let signed = match a.rel {
                Rel::Le | Rel::Lt => v.max(0.0),
                Rel::Ge | Rel::Gt => (-v).max(0.0),
            };
            worst = worst.max(signed);
        }
        worst
    }

    /// HC4-revise contraction of `b` against the formula (the compiled
    /// equivalent of [`crate::contract::Hc4::contract`]).
    pub fn contract(&self, b: &BoxDomain, scratch: &mut SolveScratch) -> Contraction {
        self.contract_with_rounds(b, scratch, self.max_rounds)
    }

    /// [`CompiledFormula::contract`] with an explicit forward/backward round
    /// count (the ablation benchmarks sweep it).
    pub fn contract_with_rounds(
        &self,
        b: &BoxDomain,
        scratch: &mut SolveScratch,
        max_rounds: usize,
    ) -> Contraction {
        ensure_slots(&mut scratch.ivals, self.itape.len());
        self.itape.forward(b.dims(), &mut scratch.ivals);
        self.contract_after_forward(b, scratch, max_rounds)
    }

    /// The post-forward remainder of [`CompiledFormula::contract_with_rounds`]:
    /// impose root constraints, sweep backward, extract variable domains,
    /// iterate. Requires `scratch.ivals` to already hold the forward image
    /// of `b` — the scalar path computes it in place, the batched path
    /// copies one SoA lane in. Keeping this a single function is what makes
    /// batched and scalar contraction identical by construction rather than
    /// by parallel maintenance.
    pub(crate) fn contract_after_forward(
        &self,
        b: &BoxDomain,
        scratch: &mut SolveScratch,
        max_rounds: usize,
    ) -> Contraction {
        let vals = &mut scratch.ivals;
        debug_assert_eq!(vals.len(), self.itape.len());
        let mut current = b.clone();
        for round in 0..max_rounds {
            if round > 0 {
                // Re-tighten parents from the narrowed children.
                self.itape.forward_meet(vals);
            }
            // Impose root constraints.
            for a in &self.atoms {
                let slot = a.root as usize;
                let met = vals[slot].intersect(&a.allowed);
                if met.is_empty() {
                    return Contraction::Empty;
                }
                vals[slot] = met;
            }
            // Backward sweep.
            if !self.itape.backward(vals) {
                return Contraction::Empty;
            }
            // Extract variable domains. Variables beyond the box's dimension
            // (possible with malformed formulas) read as ENTIRE and are not
            // contracted.
            let mut next = current.clone();
            for &(slot, v) in self.itape.var_slots() {
                if (v as usize) >= current.ndim() {
                    continue;
                }
                let met = vals[slot as usize].intersect(&current.dim(v as usize));
                if met.is_empty() {
                    return Contraction::Empty;
                }
                next.set_dim(v as usize, met);
            }
            let gain = improvement(&current, &next);
            current = next;
            if gain < 0.05 {
                break;
            }
        }
        Contraction::Box(current)
    }

    /// Batched HC4 contraction over `width` lanes whose forward images sit
    /// in the structure-of-arrays slot file `vals` (which this mutates —
    /// callers wanting the pure forward image copy it out first).
    ///
    /// Round orchestration mirrors [`CompiledFormula::contract_after_forward`]
    /// lane by lane — impose root constraints, sweep backward, extract
    /// variable domains, stop at < 5% improvement — but each sweep runs
    /// instruction-outer across all still-live lanes
    /// (`IntervalTape::{backward_batch, forward_meet_batch}`), so one
    /// instruction decode serves the whole batch and the inverse rules are
    /// literally the shared `backward_step` code. Lanes decide
    /// independently; `results[j]` is always set on return.
    pub(crate) fn contract_batch(
        &self,
        boxes: &[BoxDomain],
        width: usize,
        vals: &mut [Interval],
        alive: &mut Vec<bool>,
        results: &mut Vec<Option<Contraction>>,
        current: &mut Vec<BoxDomain>,
    ) {
        debug_assert_eq!(boxes.len(), width);
        debug_assert_eq!(vals.len(), self.itape.len() * width);
        alive.clear();
        alive.resize(width, true);
        results.clear();
        results.resize(width, None);
        current.clear();
        current.extend(boxes.iter().cloned());
        for round in 0..self.max_rounds {
            if !alive.iter().any(|&a| a) {
                break;
            }
            if round > 0 {
                // Re-tighten parents from the narrowed children.
                self.itape.forward_meet_batch(width, alive, vals);
            }
            // Impose root constraints.
            for j in 0..width {
                if !alive[j] {
                    continue;
                }
                for a in &self.atoms {
                    let idx = a.root as usize * width + j;
                    let met = vals[idx].intersect(&a.allowed);
                    if met.is_empty() {
                        results[j] = Some(Contraction::Empty);
                        alive[j] = false;
                        break;
                    }
                    vals[idx] = met;
                }
            }
            // Backward sweep across the surviving lanes.
            self.itape.backward_batch(width, alive, vals);
            for j in 0..width {
                if !alive[j] && results[j].is_none() {
                    results[j] = Some(Contraction::Empty);
                }
            }
            // Extract variable domains. Variables beyond a box's dimension
            // read as ENTIRE and are not contracted (mirrors the scalar
            // path).
            for j in 0..width {
                if !alive[j] {
                    continue;
                }
                let mut next = current[j].clone();
                let mut empty = false;
                for &(slot, v) in self.itape.var_slots() {
                    if (v as usize) >= current[j].ndim() {
                        continue;
                    }
                    let met =
                        vals[slot as usize * width + j].intersect(&current[j].dim(v as usize));
                    if met.is_empty() {
                        empty = true;
                        break;
                    }
                    next.set_dim(v as usize, met);
                }
                if empty {
                    results[j] = Some(Contraction::Empty);
                    alive[j] = false;
                    continue;
                }
                let gain = improvement(&current[j], &next);
                current[j] = next;
                if gain < 0.05 {
                    results[j] = Some(Contraction::Box(current[j].clone()));
                    alive[j] = false;
                }
            }
        }
        for j in 0..width {
            if results[j].is_none() {
                results[j] = Some(Contraction::Box(current[j].clone()));
            }
        }
    }

    /// The mean-value program, built (with full symbolic differentiation) on
    /// first use and cached for the lifetime of the compiled formula.
    fn mv(&self) -> &MeanValueProgram {
        self.mv.get_or_init(|| {
            // Counted so the compile-once tests catch an accidental
            // per-box gradient rebuild just like any other recompilation.
            COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
            let nvars = self.mv_nvars();
            MeanValueProgram {
                atoms: self
                    .source
                    .atoms
                    .iter()
                    .map(|a| {
                        let free = a.expr.free_vars();
                        let overflow = free.iter().any(|&v| v as usize >= nvars);
                        // Gradients indexed by axis: only the axes the
                        // expression mentions are differentiated and
                        // lowered; the rest stay `None` (gradient ≡ 0).
                        let mut roots: Vec<xcv_expr::Expr> = vec![a.expr.clone()];
                        let mut grad_roots: Vec<Option<usize>> = vec![None; nvars];
                        let mut grad_pairs: Vec<(u32, u32)> = Vec::new();
                        for &v in free.iter().filter(|&&v| (v as usize) < nvars) {
                            grad_roots[v as usize] = Some(roots.len());
                            grad_pairs.push((v, roots.len() as u32));
                            roots.push(a.expr.diff(v));
                        }
                        MvAtom {
                            rel: a.rel,
                            itape: IntervalTape::compile(&roots),
                            grad_roots,
                            grad_pairs,
                            overflow,
                        }
                    })
                    .collect(),
            }
        })
    }

    /// True when the mean-value enclosure *proves* some atom unsatisfiable on
    /// the box (sound pruning signal; see [`crate::meanvalue`]).
    pub fn mv_certainly_infeasible(&self, b: &BoxDomain, scratch: &mut SolveScratch) -> bool {
        for atom in &self.mv().atoms {
            let enc = mv_enclosure(atom, b, scratch);
            if enc.is_empty() {
                continue; // no information
            }
            if enc.intersect(&atom.rel.allowed()).is_empty() {
                return true;
            }
        }
        false
    }

    /// Interval-Newton-style contraction over the first-order relaxation
    /// (see [`crate::meanvalue::MeanValue::contract`] for the math). `None`
    /// when the box is proven infeasible.
    pub fn mv_contract(&self, b: &BoxDomain, scratch: &mut SolveScratch) -> Option<BoxDomain> {
        let mut current = b.clone();
        for atom in &self.mv().atoms {
            if atom.overflow {
                // A variable beyond the space cannot be bounded by the box:
                // the first-order form carries no information for this atom.
                continue;
            }
            let mid = current.midpoint();
            let vals = &mut scratch.mvals;
            ensure_slots(vals, atom.itape.len());
            // g(m): evaluate over the point box.
            scratch.point_doms.clear();
            scratch
                .point_doms
                .extend(mid.iter().map(|&x| Interval::point(x)));
            atom.itape.forward(&scratch.point_doms, vals);
            let g_m = vals[atom.itape.root_slot(0) as usize];
            if g_m.is_empty() {
                continue;
            }
            // An axis past the box's dimension has an unbounded offset:
            // contracting without its term would be unsound, so skip.
            if atom
                .grad_roots
                .iter()
                .skip(current.ndim())
                .any(Option::is_some)
            {
                continue;
            }
            // Gradient ranges over the full box, indexed by axis.
            atom.itape.forward(current.dims(), vals);
            let grads: Vec<(usize, Interval)> = atom
                .grad_roots
                .iter()
                .enumerate()
                .filter_map(|(axis, root)| {
                    root.map(|r| (axis, vals[atom.itape.root_slot(r) as usize]))
                })
                .collect();
            let offsets: Vec<Interval> = grads
                .iter()
                .map(|&(v, g)| g.mul(&current.dim(v).sub(&Interval::point(mid[v]))))
                .collect();
            let allowed = atom.rel.allowed();
            for (k, &(v, grad)) in grads.iter().enumerate() {
                if grad.contains(0.0) && !grad.is_point() {
                    // Extended division would return ENTIRE unless the rest
                    // already pins things down; skip cheaply.
                    continue;
                }
                // rest = g(m) + Σ_{j≠k} offsets[j]
                let mut rest = g_m;
                for (j, off) in offsets.iter().enumerate() {
                    if j != k {
                        rest = rest.add(off);
                    }
                }
                // allowed ∋ rest + grad·(x_v − m_v)
                // ⇒ x_v ∈ m_v + (allowed − rest)/grad
                let rhs = allowed.sub(&rest).div(&grad);
                let newdom = current.dim(v).intersect(&rhs.add(&Interval::point(mid[v])));
                if newdom.is_empty() {
                    return None;
                }
                current.set_dim(v, newdom);
            }
        }
        Some(current)
    }

    /// Rung-1 contractor of the escalation ladder: interval-Newton (Gauss–
    /// Seidel) sweeps over the mean-value gradient tapes, through the
    /// *shared* [`xcv_expr::newton::newton_contract`] driver — the same
    /// function the certificate checker replays, so recorded `Newton` steps
    /// verify bitwise. `None` when a row solve proves the box infeasible.
    pub fn newton_contract(
        &self,
        b: &BoxDomain,
        sweeps: usize,
        scratch: &mut SolveScratch,
    ) -> Option<BoxDomain> {
        let prog = self.mv();
        // Overflow atoms (a variable beyond the space) carry no first-order
        // information; axes beyond the *box* are skipped by the driver.
        let atoms: Vec<xcv_expr::newton::NewtonAtom<'_>> = prog
            .atoms
            .iter()
            .filter(|a| !a.overflow)
            .map(|a| xcv_expr::newton::NewtonAtom {
                tape: &a.itape,
                grads: &a.grad_pairs,
                allowed: a.rel.allowed(),
            })
            .collect();
        scratch.newton_dims.clear();
        scratch.newton_dims.extend_from_slice(b.dims());
        if !xcv_expr::newton::newton_contract(
            &atoms,
            &mut scratch.newton_dims,
            sweeps,
            &mut scratch.newton,
        ) {
            return None;
        }
        Some(BoxDomain::new(scratch.newton_dims.clone()))
    }

    /// Portable form of the Newton gradient program for certificate
    /// emission: per atom (formula order), `None` when the atom's
    /// first-order form carries no information (variable overflow), else
    /// the portable gradient tape (roots `[g, ∂g/∂axis…]`) and the
    /// ascending axes its gradient roots cover (pair `i` is root `i + 1`).
    pub fn newton_portable(&self) -> Vec<Option<(String, Vec<u32>)>> {
        self.mv()
            .atoms
            .iter()
            .map(|a| {
                if a.overflow {
                    None
                } else {
                    Some((
                        a.itape.to_portable(),
                        a.grad_pairs.iter().map(|&(ax, _)| ax).collect(),
                    ))
                }
            })
            .collect()
    }

    /// Rung-2 contractor: 3B/CID slab shaving. Probes a slab of relative
    /// width `frac` at each face of every supported axis (low face first,
    /// then high, axes ascending — the order is part of the certificate
    /// contract) with a dirty-cone forward pass; a slab on which some
    /// atom's enclosure misses its allowed set entirely contains no
    /// solution, so the box shrinks to the complement. Each face is probed
    /// up to `passes` times with the slab fraction *doubling* after every
    /// successful shave (capped at half the remaining width — CID-style
    /// dichotomy, so a deeply infeasible face region is consumed in
    /// logarithmically few probes), stopping at the first feasible-looking
    /// slab. `only_axis` restricts probing to that axis (the ladder shaves
    /// just the split axis — the one whose width drives subtree growth —
    /// to keep the per-node probe count independent of dimension); `None`
    /// probes every supported axis. Shaving only ever narrows (a slab is
    /// strictly smaller than its axis); it never empties the box.
    /// `on_shave` is called per shaved slab with
    /// `(axis, high_face, new_bound)` — the trace hook. Returns `None`
    /// when nothing shaved.
    pub fn shave_3b(
        &self,
        b: &BoxDomain,
        scratch: &mut SolveScratch,
        frac: f64,
        passes: u32,
        only_axis: Option<u32>,
        mut on_shave: impl FnMut(u32, bool, f64),
    ) -> Option<BoxDomain> {
        let ndim = b.ndim();
        let doms = &mut scratch.shave_doms;
        let vals = &mut scratch.shave_vals;
        doms.clear();
        doms.extend_from_slice(b.dims());
        ensure_slots(vals, self.itape.len());
        self.itape.forward(doms, vals);
        // Axes whose image `vals` no longer matches `doms` (the last probe).
        let mut stale = 0u64;
        let mut changed = false;
        for v in 0..ndim.min(64) {
            if !self.supports_axis(v) {
                continue;
            }
            if only_axis.is_some_and(|a| a as usize != v) {
                continue;
            }
            for high_face in [false, true] {
                let mut sf = frac;
                for _ in 0..passes {
                    let d = doms[v];
                    let w = d.width();
                    if !(w.is_finite() && w > 0.0) {
                        break;
                    }
                    let s = if high_face {
                        d.hi - sf.min(0.5) * w
                    } else {
                        d.lo + sf.min(0.5) * w
                    };
                    if !(s > d.lo && s < d.hi) {
                        break;
                    }
                    doms[v] = if high_face {
                        Interval::new(s, d.hi)
                    } else {
                        Interval::new(d.lo, s)
                    };
                    self.itape.forward_masked(stale | (1u64 << v), doms, vals);
                    stale = 1u64 << v;
                    let infeasible = self
                        .atoms
                        .iter()
                        .any(|a| vals[a.root as usize].intersect(&a.allowed).is_empty());
                    if infeasible {
                        // Closed-slab soundness: no solution in the slab up
                        // to and including `s`, so keeping `s` in the
                        // remainder loses nothing.
                        doms[v] = if high_face {
                            Interval::new(d.lo, s)
                        } else {
                            Interval::new(s, d.hi)
                        };
                        changed = true;
                        on_shave(v as u32, high_face, s);
                        sf *= 2.0;
                    } else {
                        doms[v] = d;
                        break;
                    }
                }
            }
        }
        if changed {
            Some(BoxDomain::new(doms.clone()))
        } else {
            None
        }
    }

    /// Satellite-2 stage of the batched engine: precompute, for every lane
    /// whose contraction produced a non-empty box, the f64 midpoint
    /// feasibility check and both child-half split scores in **one**
    /// instruction-outer [`Tape::run_batch`] pass (3 probe points per
    /// lane), instead of three scalar tape runs per lane inside
    /// `step_after_contract`. Results land in `scratch.lane_pre`; lanes
    /// that were pruned (or whose box the mean-value/ladder rungs later
    /// modify — the consumer guards on that) stay `None` and fall back to
    /// the scalar path. Bit-identical by construction: `run_batch` lanes
    /// match `Tape::run`, and the probe points are computed by the same
    /// `midpoint`/`bisect_supported` calls the scalar path makes.
    pub(crate) fn lane_scores(&self, lanes: &[Option<Contraction>], scratch: &mut SolveScratch) {
        scratch.lane_pre.clear();
        scratch.lane_pre.resize(lanes.len(), None);
        let mut flat = std::mem::take(&mut scratch.fpre_flat);
        let mut soa = std::mem::take(&mut scratch.fpre_soa);
        flat.clear();
        let mut ndim = 0usize;
        let mut used: Vec<usize> = Vec::with_capacity(lanes.len());
        for (j, r) in lanes.iter().enumerate() {
            let Some(Contraction::Box(b)) = r else {
                continue;
            };
            if b.is_empty() || b.ndim() == 0 {
                continue;
            }
            if ndim == 0 {
                ndim = b.ndim();
            }
            if b.ndim() != ndim {
                continue;
            }
            let (l, r, _axis) = self.bisect_supported(b);
            for d in b.dims() {
                flat.push(d.midpoint());
            }
            for d in l.dims() {
                flat.push(d.midpoint());
            }
            for d in r.dims() {
                flat.push(d.midpoint());
            }
            used.push(j);
        }
        if !used.is_empty() {
            let width = used.len() * 3;
            let points: Vec<&[f64]> = flat.chunks_exact(ndim).collect();
            soa.resize(self.ftape.len() * width, 0.0);
            self.ftape.run_batch(width, &points, &mut soa);
            for (t, &j) in used.iter().enumerate() {
                // Midpoint check: every atom holds exactly (NaN fails).
                let holds_mid = self.atoms.iter().all(|a| {
                    let v = soa[a.froot as usize * width + 3 * t];
                    !v.is_nan() && a.rel.holds(v)
                });
                // Split scores: worst signed violation per half midpoint
                // (replicates `violation_score`, including NaN → +∞).
                let score = |col: usize| -> f64 {
                    let mut worst = 0.0f64;
                    for a in &self.atoms {
                        let v = soa[a.froot as usize * width + col];
                        if v.is_nan() {
                            return f64::INFINITY;
                        }
                        let signed = match a.rel {
                            Rel::Le | Rel::Lt => v.max(0.0),
                            Rel::Ge | Rel::Gt => (-v).max(0.0),
                        };
                        worst = worst.max(signed);
                    }
                    worst
                };
                scratch.lane_pre[j] = Some(LanePre {
                    holds_mid,
                    sl: score(3 * t + 1),
                    sr: score(3 * t + 2),
                });
            }
        }
        scratch.fpre_flat = flat;
        scratch.fpre_soa = soa;
    }
}

/// Rigorous first-order enclosure of one atom's expression over `b`.
fn mv_enclosure(atom: &MvAtom, b: &BoxDomain, scratch: &mut SolveScratch) -> Interval {
    if atom.overflow {
        // The expression mentions a variable beyond the space (malformed
        // formula): the first-order form carries no information. Dropping
        // the term instead would tighten unsoundly.
        return Interval::ENTIRE;
    }
    let mid = b.midpoint();
    let vals = &mut scratch.mvals;
    ensure_slots(vals, atom.itape.len());
    scratch.point_doms.clear();
    scratch
        .point_doms
        .extend(mid.iter().map(|&x| Interval::point(x)));
    atom.itape.forward(&scratch.point_doms, vals);
    let g_m = vals[atom.itape.root_slot(0) as usize];
    if g_m.is_empty() {
        // Midpoint outside the natural domain: fall back to "unknown".
        return Interval::ENTIRE;
    }
    atom.itape.forward(b.dims(), vals);
    let mut total = g_m;
    for (axis, root) in atom.grad_roots.iter().enumerate() {
        let Some(r) = root else { continue };
        // An axis beyond the box's dimension has an unbounded offset: the
        // first-order form carries no information.
        let Some(&m_v) = mid.get(axis) else {
            return Interval::ENTIRE;
        };
        let grad_range = vals[atom.itape.root_slot(*r) as usize];
        let dim = b.dim(axis);
        let offset = dim.sub(&Interval::point(m_v));
        total = total.add(&grad_range.mul(&offset));
    }
    total
}

/// Relative contraction gain between two boxes (max over dimensions). The
/// escalation ladder's stall detector reuses it (`pub(crate)`).
pub(crate) fn improvement(before: &BoxDomain, after: &BoxDomain) -> f64 {
    let mut best: f64 = 0.0;
    for i in 0..before.ndim() {
        let wb = before.dim(i).width();
        let wa = after.dim(i).width();
        if wb > 0.0 && wb.is_finite() {
            best = best.max((wb - wa) / wb);
        } else if wb.is_infinite() && wa.is_finite() {
            best = 1.0;
        }
    }
    best
}

/// Size a slot-file buffer without per-box reinitialization.
///
/// Every tape pass is **write-before-read** (see `xcv_expr::itape`): a full
/// forward pass overwrites every slot it will read, and partial passes
/// (`forward_from`, masked `forward_batch` lanes) deliberately read the
/// previous image. Refilling the buffer with [`Interval::ENTIRE`] per box —
/// what a naive `vec![ENTIRE; n]` per call amounts to — is therefore pure
/// wasted memset; only the *length* matters. The fill value here seeds
/// newly grown slots and is never semantically observed.
#[inline]
pub(crate) fn ensure_slots(buf: &mut Vec<Interval>, len: usize) {
    buf.resize(len, Interval::ENTIRE);
}

/// A pool of parent slot-file snapshots for the batched solver's dirty-slot
/// child evaluation: each split stores its contracted parent's pure forward
/// image (plus the box it was evaluated over) for its two children, and the
/// buffer is recycled once both children have consumed it. Buffers are
/// reused across snapshots *and* solve calls, so steady-state batched
/// solving allocates nothing here.
#[derive(Debug, Default)]
pub(crate) struct SnapPool {
    vals: Vec<Vec<Interval>>,
    boxes: Vec<Vec<Interval>>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

impl SnapPool {
    /// Drop all live snapshots (an early-returning solve leaves some), but
    /// keep the buffers for reuse.
    pub(crate) fn reset(&mut self) {
        self.free.clear();
        for (i, r) in self.refs.iter_mut().enumerate() {
            *r = 0;
            self.free.push(i as u32);
        }
    }

    /// A fresh snapshot with `refs` outstanding consumers; its buffers are
    /// cleared but retain capacity.
    pub(crate) fn alloc(&mut self, refs: u32) -> u32 {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.vals.push(Vec::new());
                self.boxes.push(Vec::new());
                self.refs.push(0);
                (self.vals.len() - 1) as u32
            }
        };
        self.refs[id as usize] = refs;
        self.vals[id as usize].clear();
        self.boxes[id as usize].clear();
        id
    }

    pub(crate) fn store(&mut self, id: u32) -> (&mut Vec<Interval>, &mut Vec<Interval>) {
        (&mut self.vals[id as usize], &mut self.boxes[id as usize])
    }

    /// The snapshot's slot file and the dims of the box it was evaluated on.
    pub(crate) fn get(&self, id: u32) -> (&[Interval], &[Interval]) {
        (&self.vals[id as usize], &self.boxes[id as usize])
    }

    /// One consumer done; recycle the buffers when the last lets go.
    pub(crate) fn release(&mut self, id: u32) {
        let r = &mut self.refs[id as usize];
        debug_assert!(*r > 0);
        *r -= 1;
        if *r == 0 {
            self.free.push(id);
        }
    }

    /// Add `extra` consumers to a live snapshot. Snapshot-copy elision: a
    /// split lane whose dirty-cone re-evaluation reproduced its parent's
    /// image bitwise hands the parent snapshot straight to its children
    /// instead of allocating a copy.
    pub(crate) fn retain(&mut self, id: u32, extra: u32) {
        debug_assert!(self.refs[id as usize] > 0);
        self.refs[id as usize] += extra;
    }
}

/// Precomputed per-lane f64 stage of `step_after_contract` (see
/// [`CompiledFormula::lane_scores`]): midpoint feasibility and both
/// child-half split scores.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LanePre {
    pub(crate) holds_mid: bool,
    pub(crate) sl: f64,
    pub(crate) sr: f64,
}

/// Reusable per-worker mutable state for [`CompiledFormula`] operations.
/// Buffers grow on demand, so one scratch serves problems of any size (and,
/// kept in a `thread_local`, every problem a worker thread ever touches).
///
/// Slot files are reused across boxes *without* reinitialization — tape
/// passes are write-before-read, so refilling with `ENTIRE` per box would
/// be pure wasted memset (see [`ensure_slots`]).
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Slot file of the formula's shared interval tape.
    pub(crate) ivals: Vec<Interval>,
    /// Slot file for the mean-value tapes (resized per atom).
    mvals: Vec<Interval>,
    /// Register file for the f64 atom tapes (resized per atom).
    fvals: Vec<f64>,
    /// Bit patterns of the point `fvals` was last evaluated at, and the
    /// [`CompiledFormula`] uid it belongs to (0 = invalid) — the key of the
    /// incremental `run_ftape` cache. The cache is part of the batched
    /// engine's incremental-evaluation machinery and only engages while
    /// `fcache` is set (the scalar reference engine evaluates every point
    /// in full, like the architecture it benchmarks against).
    fpoint: Vec<u64>,
    fpoint_uid: u64,
    pub(crate) fcache: bool,
    /// Point-box domains for mean-value midpoint evaluation.
    point_doms: Vec<Interval>,
    /// DFS work stack of the scalar branch-and-prune search:
    /// `(box, depth, pristine)` — `pristine` is the inherited
    /// no-ladder-ancestor flag (see `DeltaSolver::step_after_contract`).
    pub(crate) stack: Vec<(BoxDomain, u32, bool)>,
    /// Structure-of-arrays slot file of the batched search
    /// (`slots × batch_width`, lane-major per slot).
    pub(crate) soa: Vec<Interval>,
    /// Pure forward image of the current batch (the SoA before contraction
    /// mutates it) — split lanes snapshot their column from here.
    pub(crate) soa_pure: Vec<Interval>,
    /// Per-lane dirty masks for the batched forward pass.
    pub(crate) lane_dirty: Vec<u64>,
    /// Per-lane liveness flags of the batched contraction rounds.
    pub(crate) lane_alive: Vec<bool>,
    /// Per-lane contraction results of the batched rounds.
    pub(crate) lane_results: Vec<Option<Contraction>>,
    /// Per-lane working boxes of the batched contraction rounds.
    pub(crate) lane_current: Vec<BoxDomain>,
    /// The batch's input boxes (cloned out of the stack nodes).
    pub(crate) lane_boxes: Vec<BoxDomain>,
    /// Parent forward-image snapshots for dirty-slot child evaluation.
    pub(crate) snaps: SnapPool,
    /// Work stack of the batched frontier search.
    pub(crate) bstack: Vec<crate::solve::Node>,
    /// Point box and slot file of the interval-certified midpoint check
    /// (kept separate from `ivals`, whose contents other passes reuse).
    cert_point: Vec<Interval>,
    cert_vals: Vec<Interval>,
    /// Working box of the rung-1 interval-Newton contractor.
    newton_dims: Vec<Interval>,
    /// Sweep buffers of the shared Newton driver.
    newton: xcv_expr::newton::NewtonScratch,
    /// Probe domains of the rung-2 3B shaver.
    shave_doms: Vec<Interval>,
    /// Slot file of the rung-2 3B shaver's forward passes.
    shave_vals: Vec<Interval>,
    /// Flattened probe points of the batched lane-score pass (3 per lane).
    fpre_flat: Vec<f64>,
    /// SoA f64 register file of the batched lane-score pass.
    fpre_soa: Vec<f64>,
    /// Per-lane precomputed midpoint/split-score results.
    pub(crate) lane_pre: Vec<Option<LanePre>>,
}

impl SolveScratch {
    pub fn new() -> SolveScratch {
        SolveScratch::default()
    }

    /// The shared f64 buffer, for callers evaluating [`CompiledAtom`]s with
    /// this scratch (e.g. ψ validation in the verifier). Handing the buffer
    /// out invalidates the incremental `run_ftape` cache — another tape is
    /// about to overwrite the registers.
    pub fn f64_buf(&mut self) -> &mut Vec<f64> {
        self.fpoint_uid = 0;
        &mut self.fvals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Atom, Rel};
    use xcv_expr::var;

    #[test]
    fn compiled_contract_matches_fresh_hc4() {
        let f = Formula::new(vec![
            Atom::new(var(0).powi(2) - 4.0, Rel::Le),
            Atom::new(var(0) - 1.0, Rel::Ge),
        ]);
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let got = compiled.contract(&b, &mut scratch);
        let want = crate::contract::Hc4::new(&f).contract(&b);
        assert_eq!(got, want);
    }

    #[test]
    fn folded_constants_match_fresh_hc4() {
        // √2·x − e ≤ 0 carries two tape-foldable constants; the compiled
        // (folded) contraction must equal the legacy unfolded Hc4 result.
        use xcv_expr::constant;
        let f = Formula::single(Atom::new(
            constant(2.0).sqrt() * var(0) - constant(1.0).exp(),
            Rel::Le,
        ));
        let b = BoxDomain::from_bounds(&[(-10.0, 10.0)]);
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let got = compiled.contract(&b, &mut scratch);
        let want = crate::contract::Hc4::new(&f).contract(&b);
        assert_eq!(got, want);
    }

    #[test]
    fn shared_psi_atom_matches_standalone_compile() {
        let psi = Atom::new(var(0) - 3.0, Rel::Ge);
        let negation = Formula::single(psi.negate());
        let compiled = CompiledFormula::compile(&negation);
        let before = compile_count();
        let shared = compiled.atom_tape(0, psi.rel);
        assert_eq!(compile_count(), before, "tape sharing must not compile");
        let standalone = CompiledAtom::compile(&psi);
        for p in [[0.0], [3.0], [5.0], [f64::NAN]] {
            assert_eq!(shared.holds_at(&p), standalone.holds_at(&p));
            assert_eq!(shared.holds_at(&p), psi.holds_at(&p));
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        // Contract a wide box, then an infeasible one, then the wide one
        // again: results must be identical on the repeats.
        let f = Formula::single(Atom::new(var(0) - 3.0, Rel::Le));
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let wide = BoxDomain::from_bounds(&[(0.0, 10.0)]);
        let infeasible = BoxDomain::from_bounds(&[(5.0, 10.0)]);
        let first = compiled.contract(&wide, &mut scratch);
        assert_eq!(
            compiled.contract(&infeasible, &mut scratch),
            Contraction::Empty
        );
        assert_eq!(compiled.contract(&wide, &mut scratch), first);
    }

    #[test]
    fn holds_and_score_match_formula() {
        let f = Formula::new(vec![
            Atom::new(var(0) - 1.0, Rel::Ge),
            Atom::new(var(0) - 2.0, Rel::Le),
        ]);
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        for p in [[0.0], [1.5], [3.0]] {
            assert_eq!(compiled.holds_at(&p, &mut scratch), f.holds_at(&p));
        }
        assert_eq!(compiled.violation_score(&[1.5], &mut scratch), 0.0);
        assert!(compiled.violation_score(&[0.0], &mut scratch) > 0.9);
        // NaN (ln of a negative) scores +inf.
        let g = Formula::single(Atom::new(var(0).ln(), Rel::Ge));
        let cg = CompiledFormula::compile(&g);
        assert_eq!(cg.violation_score(&[-1.0], &mut scratch), f64::INFINITY);
    }

    // Counter-flatness assertions live in `tests/compile_once.rs`: unit
    // tests here share a process with sibling tests that compile formulas
    // on parallel threads, so a global-counter window would be racy.

    #[test]
    fn compiled_space_is_carried_and_mv_stays_axis_sound() {
        use xcv_expr::AxisKind;
        // A formula over axes 0 and 2 (axis 1 unused — its gradient slot
        // must stay None) with a typed per-spin space attached.
        let f = Formula::single(Atom::new(var(0) * var(2) - 1.0, Rel::Le));
        let space = VarSpace::of_kinds(&[AxisKind::Rs, AxisKind::SUp, AxisKind::SDown]);
        let compiled = CompiledFormula::compile_in(&f, space);
        assert_eq!(
            compiled.var_space().unwrap().names(),
            vec!["rs", "s_up", "s_dn"]
        );
        // x0·x2 ∈ [4, 9] on the box, so x0·x2 ≤ 1 is provably infeasible —
        // through the axis-indexed mean-value program and the legacy path
        // alike.
        let b = BoxDomain::from_bounds(&[(2.0, 3.0), (0.0, 5.0), (2.0, 3.0)]);
        let mut scratch = SolveScratch::new();
        assert!(compiled.mv_certainly_infeasible(&b, &mut scratch));
        let mut legacy = crate::meanvalue::MeanValue::new(&f);
        assert!(legacy.certainly_infeasible(&b));
        // Anonymous compilation still works, with no space attached.
        let anon = CompiledFormula::compile(&f);
        assert!(anon.var_space().is_none());
        assert!(anon.mv_certainly_infeasible(&b, &mut scratch));
        // And contraction agrees between the two compilations.
        let wide = BoxDomain::from_bounds(&[(0.0, 3.0), (0.0, 5.0), (0.0, 3.0)]);
        assert_eq!(
            compiled.contract(&wide, &mut scratch),
            anon.contract(&wide, &mut scratch)
        );
    }

    #[test]
    fn mv_out_of_range_var_is_no_information() {
        // A formula mentioning var(1) solved over a 1-D box: the mean-value
        // form cannot bound the missing dimension, so it must neither panic
        // (the legacy behaviour) nor prune.
        let f = Formula::single(Atom::new(var(1) + 1.0, Rel::Le));
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        assert!(!compiled.mv_certainly_infeasible(&b, &mut scratch));
        let g = var(0).min(&var(1));
        let f = Formula::single(Atom::new(g, Rel::Ge));
        let compiled = CompiledFormula::compile(&f);
        assert!(!compiled.mv_certainly_infeasible(&b, &mut scratch));
    }

    #[test]
    fn mv_built_once_and_agrees_with_legacy() {
        let g = var(0) - var(0).powi(2);
        let f = Formula::single(Atom::new(g - 0.2, Rel::Le));
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let b = BoxDomain::from_bounds(&[(0.4, 0.6)]);
        assert!(compiled.mv_certainly_infeasible(&b, &mut scratch));
        let feasible = BoxDomain::from_bounds(&[(0.0, 0.3)]);
        assert!(!compiled.mv_certainly_infeasible(&feasible, &mut scratch));
        // Legacy comparison.
        let mut legacy = crate::meanvalue::MeanValue::new(&f);
        assert!(legacy.certainly_infeasible(&b));
        assert!(!legacy.certainly_infeasible(&feasible));
        // Newton contraction agreement on a linear constraint.
        let lin = Formula::single(Atom::new(var(0) + 1.0, Rel::Le));
        let clin = CompiledFormula::compile(&lin);
        let wide = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
        let got = clin.mv_contract(&wide, &mut scratch).expect("feasible");
        let want = crate::meanvalue::MeanValue::new(&lin)
            .contract(&wide)
            .expect("feasible");
        assert_eq!(got.dim(0), want.dim(0));
    }
}
