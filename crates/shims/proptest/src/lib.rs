//! A minimal, dependency-free stand-in for the subset of [proptest's] API
//! this workspace's property tests use.
//!
//! The build environment is offline, so the real crates-io proptest is
//! unavailable. The shim keeps the test sources intact: the `proptest!`
//! macro, `Strategy` with `prop_map` / `prop_recursive`, `prop_oneof!`,
//! range and tuple strategies, `prop_assert*!` and `prop_assume!`. Semantics
//! differ from real proptest in two deliberate ways:
//!
//! * value generation is **deterministic** (a fixed-seed xorshift stream per
//!   test function), so failures are reproducible without a persistence
//!   file;
//! * there is **no shrinking** — a failing case reports the formatted
//!   assertion message only.
//!
//! [proptest's]: https://docs.rs/proptest

use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

// ---------------------------------------------------------------------------
// RNG: xorshift64* — deterministic, seeded per test function
// ---------------------------------------------------------------------------

pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, distinct seed per test.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Config and case-level errors
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count: the `PROPTEST_CASES` environment variable
    /// overrides the per-test setting (useful to dial CI time up or down).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without counting it as a result.
    Reject,
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Recursive strategies: apply `recurse` `depth` times, mixing the leaf
    /// strategy back in at every level (proptest's size parameters are
    /// accepted but unused — depth alone bounds the trees).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = boxed(self);
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = boxed(Union::new(vec![leaf.clone(), boxed(recurse(strat))]));
        }
        strat
    }
}

/// Box a strategy for type erasure (the shim's `.boxed()`).
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy(Rc::new(s))
}

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// --- ranges ---------------------------------------------------------------

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::Fail(format!(
                "prop_assert_ne! failed: both {:?}",
                a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// The test-block macro. Each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` fn running `cases` deterministic samples; `prop_assume!`
/// rejections are retried (bounded), assertion failures panic with the
/// formatted message and the case number.
#[macro_export]
macro_rules! proptest {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let __strats = ($($strat,)*);
                let __cases = __config.effective_cases();
                let mut __done: u32 = 0;
                let mut __attempts: u64 = 0;
                let __max_attempts = (__cases as u64) * 16 + 64;
                while __done < __cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest shim: too many prop_assume! rejections in {} \
                             ({} cases done of {})",
                            stringify!($name), __done, __cases
                        );
                    }
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        #[allow(unused_parens)]
                        let ($($pat,)*) =
                            $crate::Strategy::generate(&__strats, &mut __rng);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match __result {
                        Ok(()) => __done += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{} (case {} of {})", msg, __done + 1, __cases);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -3.0f64..7.5, n in 1u8..9) {
            prop_assert!((-3.0..7.5).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a, "{a} {b}");
        }

        #[test]
        fn recursion_bounded(
            t in boxed(Just(Tree::Leaf(0))).prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 4, "{t:?}");
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        inner();
    }
}
