//! A minimal, dependency-free stand-in for the subset of [rayon's] API this
//! workspace uses, built on `std::thread::scope`.
//!
//! The build environment is fully offline, so the real crates-io rayon is
//! unavailable; this shim keeps the workspace's call sites source-compatible
//! (`par_iter`, `into_par_iter`, `map`, `flat_map_iter`, `reduce`, `collect`)
//! while providing genuine multi-core execution:
//!
//! * work is split into one contiguous chunk per claimed CPU and executed on
//!   scoped threads, preserving item order on `collect`;
//! * a global permit counter bounds the *total* number of live worker
//!   threads across nested invocations (the verifier recursion fans out at
//!   several depths), degrading gracefully to sequential execution when the
//!   machine is saturated — the moral equivalent of rayon's work-stealing
//!   pool without the pool.
//!
//! Only what the workspace needs is implemented; this is not a general rayon
//! replacement.
//!
//! [rayon's]: https://docs.rs/rayon

use std::sync::atomic::{AtomicIsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice};
}

/// Global budget of extra worker threads, initialised to the machine's
/// available parallelism. Claiming permits is how nested `par_iter` calls
/// avoid exponential thread blow-up.
static PERMITS: AtomicIsize = AtomicIsize::new(-1);

fn hardware_threads() -> isize {
    std::thread::available_parallelism()
        .map(|n| n.get() as isize)
        .unwrap_or(4)
}

/// Claim up to `want` extra worker threads; returns how many were granted.
fn claim(want: isize) -> isize {
    if want <= 0 {
        return 0;
    }
    // Lazy init: the first caller seeds the counter.
    let _ = PERMITS.compare_exchange(
        -1,
        hardware_threads() - 1,
        Ordering::SeqCst,
        Ordering::SeqCst,
    );
    let mut granted = 0;
    while granted < want {
        let cur = PERMITS.load(Ordering::SeqCst);
        if cur <= 0 {
            break;
        }
        let take = (cur).min(want - granted);
        if PERMITS
            .compare_exchange(cur, cur - take, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            granted += take;
        }
    }
    granted
}

fn release(n: isize) {
    if n > 0 {
        PERMITS.fetch_add(n, Ordering::SeqCst);
    }
}

/// Run `f(chunk_index)` for each of `pieces` index ranges over `0..len`,
/// on up to `granted + 1` threads, returning per-chunk outputs in order.
fn run_chunked<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let extra = claim((len as isize - 1).min(hardware_threads() - 1));
    let pieces = (extra + 1) as usize;
    if pieces <= 1 {
        release(extra);
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(pieces);
    let bounds: Vec<std::ops::Range<usize>> = (0..pieces)
        .map(|i| (i * chunk).min(len)..((i + 1) * chunk).min(len))
        .filter(|r| !r.is_empty())
        .collect();
    let out = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds.into_iter().map(|r| scope.spawn(|| f(r))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect::<Vec<R>>()
    });
    release(extra);
    out
}

// ---------------------------------------------------------------------------
// The iterator façade
// ---------------------------------------------------------------------------

/// A "parallel iterator": a deferred pipeline over an indexable base.
/// Every adapter keeps the item-producing closure; terminal operations
/// execute the pipeline chunk-wise across threads.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Number of items the pipeline will produce.
    fn p_len(&self) -> usize;

    /// Produce the item at `index` (called from worker threads).
    fn p_get(&self, index: usize) -> Self::Item;

    fn map<U: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// rayon's `flat_map_iter`: map each item to a *serial* iterator and
    /// flatten. The flattening happens inside each chunk, preserving order.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Parallel reduce with an identity factory (rayon's signature).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let chunks = run_chunked(self.p_len(), |r| {
            let mut acc = identity();
            for i in r {
                acc = op(acc, self.p_get(i));
            }
            acc
        });
        chunks.into_iter().fold(identity(), &op)
    }

    /// Collect into any `FromIterator` collection, preserving item order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Flattening terminal support: pipelines whose chunks natively produce
/// multiple outputs (`flat_map_iter`) override this.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let chunks = run_chunked(p.p_len(), |r| r.map(|i| p.p_get(i)).collect::<Vec<T>>());
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

// --- sources ---------------------------------------------------------------

/// `slice.par_iter()`.
pub struct ParSlice<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    fn p_len(&self) -> usize {
        self.slice.len()
    }
    fn p_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParSlice<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

/// `(0..n).into_par_iter()`, `vec.into_par_iter()`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn p_len(&self) -> usize {
        self.range.len()
    }
    fn p_get(&self, index: usize) -> usize {
        self.range.start + index
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Owned-Vec source: items are moved out exactly once (each index is visited
/// once by construction of `run_chunked`).
pub struct ParVec<T: Send> {
    items: Vec<std::sync::Mutex<Option<T>>>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn p_len(&self) -> usize {
        self.items.len()
    }
    fn p_get(&self, index: usize) -> T {
        self.items[index]
            .lock()
            .expect("poisoned")
            .take()
            .expect("item already taken")
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec {
            items: self
                .into_iter()
                .map(|x| std::sync::Mutex::new(Some(x)))
                .collect(),
        }
    }
}

// --- adapters ----------------------------------------------------------------

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, U> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Sync + Send,
{
    type Item = U;
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    fn p_get(&self, index: usize) -> U {
        (self.f)(self.base.p_get(index))
    }
}

pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

/// `flat_map_iter` pipelines only support `collect::<Vec<_>>()`; each base
/// item expands in place, so chunk outputs stay ordered.
impl<B, F, U> FlatMapIter<B, F>
where
    B: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(B::Item) -> U + Sync + Send,
{
    pub fn collect<C: From<Vec<U::Item>>>(self) -> C {
        let chunks = run_chunked(self.base.p_len(), |r| {
            let mut out = Vec::new();
            for i in r {
                out.extend((self.f)(self.base.p_get(i)));
            }
            out
        });
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        C::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_reduce() {
        let data: Vec<u64> = (1..=100).collect();
        let sum = data
            .par_iter()
            .map(|&x| vec![x])
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(sum.len(), 100);
        assert_eq!(sum.iter().sum::<u64>(), 5050);
        assert_eq!(sum[0], 1);
        assert_eq!(sum[99], 100);
    }

    #[test]
    fn flat_map_iter_collect() {
        let base = [1usize, 2, 3];
        let v: Vec<usize> = base.par_iter().flat_map_iter(|&n| 0..n).collect();
        assert_eq!(v, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let outer: Vec<Vec<usize>> = (0..8)
            .into_par_iter()
            .map(|i| (0..64).into_par_iter().map(move |j| i * 64 + j).collect())
            .collect();
        let flat: Vec<usize> = outer.into_iter().flatten().collect();
        assert_eq!(flat, (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn owned_vec_into_par_iter_moves_items() {
        let strings: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = strings.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 50);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[10], 2);
    }
}
