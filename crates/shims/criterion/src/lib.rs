//! A minimal, dependency-free stand-in for the subset of [criterion's] API
//! this workspace's benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the two macros).
//!
//! The build environment is offline, so the real crates-io criterion is
//! unavailable. The shim runs each benchmark for a fixed wall-clock window
//! (after a short warm-up) and prints mean ns/iter — enough to compare the
//! workspace's code paths against each other, with none of criterion's
//! statistics. Timings are indicative, not rigorous.
//!
//! [criterion's]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(800);

/// Re-export shape: some benches import `black_box` from criterion.
pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample size is accepted for API compatibility; the shim's fixed
    /// measurement window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up.
        let t0 = Instant::now();
        while t0.elapsed() < WARMUP {
            black_box(f());
        }
        // Measure.
        let mut iters = 0u64;
        let t1 = Instant::now();
        while t1.elapsed() < MEASURE {
            black_box(f());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = t1.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:50} (no iterations completed)");
    } else {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{name:50} {ns:14.1} ns/iter  ({} iters)", b.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
