//! The PB condition checker: uniform grids, numerical derivatives, pointwise
//! checks.

use crate::gradient::{gradient_1d, gradient_axis0};
use rayon::prelude::*;
use xcv_conditions::{Condition, ALPHA_MAX, C_LO, RS_INF, RS_MAX, RS_MIN, S_MAX};
use xcv_functionals::{Family, Functional, FunctionalHandle, IntoFunctional, XcvError};

/// Grid resolution. The paper draws 10⁵ samples per axis; the default here
/// is 200×200 (tests and figures), with the resolution a parameter so the
/// benchmark harness can sweep it.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    pub n_rs: usize,
    pub n_s: usize,
    /// Number of α slices for meta-GGA functionals.
    pub n_alpha: usize,
    /// Absolute tolerance absorbing floating-point noise in the pointwise
    /// checks (the numerical-derivative conditions are otherwise hypersensitive
    /// at the grid edges).
    pub tol: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            n_rs: 200,
            n_s: 200,
            n_alpha: 9,
            tol: 1e-9,
        }
    }
}

/// The outcome of a PB grid check over the `(rs, s)` plane (α is reduced by
/// "fails if any slice fails", matching a meshed 3-D grid's projection).
#[derive(Clone, Debug)]
pub struct GridResult {
    pub functional: FunctionalHandle,
    pub condition: Condition,
    pub rs: Vec<f64>,
    pub s: Vec<f64>,
    /// Row-major pass/fail over `(rs_i, s_j)`; for LDA `s` has one dummy
    /// column.
    pub pass: Vec<bool>,
    /// The α slices meshed for meta-GGA functionals (empty otherwise); a
    /// point fails if it fails on any slice.
    pub alphas: Vec<f64>,
}

impl GridResult {
    pub fn n_rs(&self) -> usize {
        self.rs.len()
    }

    pub fn n_s(&self) -> usize {
        self.s.len()
    }

    pub fn pass_at(&self, i_rs: usize, i_s: usize) -> bool {
        self.pass[i_rs * self.s.len() + i_s]
    }

    /// PB's verdict: satisfied iff every grid point passes.
    pub fn satisfied(&self) -> bool {
        self.pass.iter().all(|&p| p)
    }

    pub fn n_violations(&self) -> usize {
        self.pass.iter().filter(|&&p| !p).count()
    }

    pub fn violation_fraction(&self) -> f64 {
        self.n_violations() as f64 / self.pass.len() as f64
    }

    /// Bounding box `((rs_min, rs_max), (s_min, s_max))` of the violating
    /// points, if any.
    pub fn violation_bbox(&self) -> Option<((f64, f64), (f64, f64))> {
        let mut bb: Option<((f64, f64), (f64, f64))> = None;
        for i in 0..self.rs.len() {
            for j in 0..self.s.len() {
                if !self.pass_at(i, j) {
                    let (rs, s) = (self.rs[i], self.s[j]);
                    bb = Some(match bb {
                        None => ((rs, rs), (s, s)),
                        Some(((r0, r1), (s0, s1))) => {
                            ((r0.min(rs), r1.max(rs)), (s0.min(s), s1.max(s)))
                        }
                    });
                }
            }
        }
        bb
    }
}

fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    let h = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + h * i as f64).collect()
}

/// Run the PB grid check for one (functional, condition) pair;
/// [`XcvError::NotApplicable`] when the condition does not apply. Accepts a
/// `Dfa` variant or any registry handle.
pub fn pb_check(
    f: impl IntoFunctional,
    condition: Condition,
    config: &GridConfig,
) -> Result<GridResult, XcvError> {
    let f = f.into_handle();
    if !condition.applies_to(f.as_ref()) {
        return Err(XcvError::NotApplicable {
            functional: f.name(),
            condition: condition.name().to_string(),
        });
    }
    let rs = linspace(RS_MIN, RS_MAX, config.n_rs);
    let h_rs = rs[1] - rs[0];
    match f.info().family {
        Family::Lda => {
            let fc: Vec<f64> = rs.iter().map(|&r| f.f_c(r, 0.0, 0.0)).collect();
            let dfc = gradient_1d(&fc, h_rs);
            let d2fc = gradient_1d(&dfc, h_rs);
            let fc_inf = f.f_c(RS_INF, 0.0, 0.0);
            // An LDA citizen can carry exchange (the spin-scaled LSDA-X at
            // ζ = 0): the Lieb–Oxford checks need F_xc here just like the
            // higher rungs.
            let needs_fxc = matches!(condition, Condition::LiebOxford | Condition::LiebOxfordExt);
            let fxc: Option<Vec<f64>> = needs_fxc.then(|| {
                rs.iter()
                    .map(|&r| f.f_xc(r, 0.0, 0.0).unwrap_or(f64::NAN))
                    .collect()
            });
            let pass: Vec<bool> = (0..rs.len())
                .map(|i| {
                    point_pass(
                        condition,
                        rs[i],
                        fc[i],
                        dfc[i],
                        d2fc[i],
                        fc_inf,
                        fxc.as_ref().map(|v| v[i]),
                        config.tol,
                    )
                })
                .collect();
            Ok(GridResult {
                functional: f,
                condition,
                rs,
                s: vec![0.0],
                pass,
                alphas: Vec::new(),
            })
        }
        Family::Gga => {
            let s = linspace(0.0, S_MAX, config.n_s);
            let pass = check_slice(f.as_ref(), condition, &rs, &s, h_rs, 0.0, config.tol);
            Ok(GridResult {
                functional: f,
                condition,
                rs,
                s,
                pass,
                alphas: Vec::new(),
            })
        }
        Family::MetaGga => {
            // Meshing α as well; a point passes only if it passes on every
            // α slice (projection of the 3-D grid).
            let s = linspace(0.0, S_MAX, config.n_s);
            let alphas = linspace(0.0, ALPHA_MAX, config.n_alpha.max(2));
            let mut pass = vec![true; rs.len() * s.len()];
            for &a in &alphas {
                let slice = check_slice(f.as_ref(), condition, &rs, &s, h_rs, a, config.tol);
                for (p, q) in pass.iter_mut().zip(slice) {
                    *p &= q;
                }
            }
            Ok(GridResult {
                functional: f,
                condition,
                rs,
                s,
                pass,
                alphas,
            })
        }
    }
}

/// Check one (rs × s) slice at fixed α. Parallelized over rows with rayon.
#[allow(clippy::too_many_arguments)]
fn check_slice(
    dfa: &dyn Functional,
    condition: Condition,
    rs: &[f64],
    s: &[f64],
    h_rs: f64,
    alpha: f64,
    tol: f64,
) -> Vec<bool> {
    let (n0, n1) = (rs.len(), s.len());
    // F_c on the grid (row-major over rs).
    let fc: Vec<f64> = rs
        .par_iter()
        .flat_map_iter(|&r| s.iter().map(move |&sv| dfa.f_c(r, sv, alpha)))
        .collect();
    let dfc = gradient_axis0(&fc, n0, n1, h_rs);
    let d2fc = gradient_axis0(&dfc, n0, n1, h_rs);
    // F_c(∞) per s column.
    let fc_inf: Vec<f64> = s.iter().map(|&sv| dfa.f_c(RS_INF, sv, alpha)).collect();
    // F_xc where needed.
    let needs_fxc = matches!(condition, Condition::LiebOxford | Condition::LiebOxfordExt);
    let fxc: Option<Vec<f64>> = needs_fxc.then(|| {
        rs.par_iter()
            .flat_map_iter(|&r| {
                s.iter()
                    .map(move |&sv| dfa.f_xc(r, sv, alpha).unwrap_or(f64::NAN))
            })
            .collect()
    });
    (0..n0 * n1)
        .into_par_iter()
        .map(|k| {
            let i = k / n1;
            let j = k % n1;
            point_pass(
                condition,
                rs[i],
                fc[k],
                dfc[k],
                d2fc[k],
                fc_inf[j],
                fxc.as_ref().map(|v| v[k]),
                tol,
            )
        })
        .collect()
}

/// The pointwise local-condition check, given grid-derived derivatives.
#[allow(clippy::too_many_arguments)]
fn point_pass(
    condition: Condition,
    rs: f64,
    fc: f64,
    dfc: f64,
    d2fc: f64,
    fc_inf: f64,
    fxc: Option<f64>,
    tol: f64,
) -> bool {
    match condition {
        Condition::EcNonPositivity => fc >= -tol,
        Condition::EcScaling => dfc >= -tol,
        Condition::UcMonotonicity => d2fc >= -2.0 / rs * dfc - tol,
        Condition::TcUpperBound => dfc <= (fc_inf - fc) / rs + tol,
        Condition::ConjTcUpperBound => dfc <= fc / rs + tol,
        Condition::LiebOxford => fxc.is_some_and(|f| f + rs * dfc <= C_LO + tol),
        Condition::LiebOxfordExt => fxc.is_some_and(|f| f <= C_LO + tol),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_functionals::Dfa;

    fn cfg() -> GridConfig {
        GridConfig {
            n_rs: 120,
            n_s: 120,
            n_alpha: 5,
            tol: 1e-9,
        }
    }

    #[test]
    fn inapplicable_is_error() {
        assert!(matches!(
            pb_check(Dfa::Lyp, Condition::LiebOxford, &cfg()),
            Err(XcvError::NotApplicable { .. })
        ));
        assert!(pb_check(Dfa::VwnRpa, Condition::LiebOxfordExt, &cfg()).is_err());
    }

    #[test]
    fn vwn_satisfies_all_applicable() {
        for cond in Condition::all() {
            if let Ok(r) = pb_check(Dfa::VwnRpa, cond, &cfg()) {
                assert!(r.satisfied(), "{cond} should pass for VWN RPA");
            }
        }
    }

    #[test]
    fn lyp_fails_all_applicable() {
        // Table II row LYP: PB finds counterexamples for every applicable
        // condition.
        for cond in Condition::all() {
            if let Ok(r) = pb_check(Dfa::Lyp, cond, &cfg()) {
                assert!(!r.satisfied(), "{cond} should fail for LYP");
                assert!(r.n_violations() > 0);
            }
        }
    }

    #[test]
    fn lyp_ec1_violation_region_matches_paper() {
        // Fig. 2a/2d: violations at s ≳ 1.66, across rs.
        let r = pb_check(Dfa::Lyp, Condition::EcNonPositivity, &cfg()).unwrap();
        let ((_, _), (s_min, s_max)) = r.violation_bbox().unwrap();
        assert!(
            (1.3..2.2).contains(&s_min),
            "violations should start near s≈1.7, got {s_min}"
        );
        assert!((s_max - S_MAX).abs() < 0.1, "violations reach the s edge");
    }

    #[test]
    fn pbe_ec1_and_ec5_pass() {
        let r = pb_check(Dfa::Pbe, Condition::EcNonPositivity, &cfg()).unwrap();
        assert!(r.satisfied());
        let r = pb_check(Dfa::Pbe, Condition::LiebOxfordExt, &cfg()).unwrap();
        assert!(r.satisfied());
    }

    #[test]
    fn pbe_ec7_fails_in_upper_left() {
        let r = pb_check(Dfa::Pbe, Condition::ConjTcUpperBound, &cfg()).unwrap();
        assert!(!r.satisfied());
        let ((rs_min, _), (_, s_max)) = r.violation_bbox().unwrap();
        assert!(rs_min < 1.0, "violations reach small rs");
        assert!(s_max > 3.0, "violations reach large s");
        // And the small-s / large-rs corner passes (Fig. 1c).
        assert!(r.pass_at(r.n_rs() - 1, 3));
    }

    #[test]
    fn scan_passes_ec1_on_grid() {
        // PB (testing) finds no SCAN violations even though the verifier
        // times out — the "not inconsistent" cells of Table II.
        let small = GridConfig {
            n_rs: 60,
            n_s: 60,
            n_alpha: 5,
            tol: 1e-9,
        };
        let r = pb_check(Dfa::Scan, Condition::EcNonPositivity, &small).unwrap();
        assert!(r.satisfied());
    }

    #[test]
    fn exchange_carrying_lda_passes_lieb_oxford() {
        // The ζ = 0 restriction of the spin-scaled LSDA exchange: F_xc = 1
        // everywhere, far below C_LO — the grid must agree with the
        // verifier's Verified mark instead of failing on a missing F_xc.
        use xcv_functionals::SpinResolved;
        let f = std::sync::Arc::new(SpinResolved::lsda_x());
        for cond in [Condition::LiebOxford, Condition::LiebOxfordExt] {
            let r = pb_check(std::sync::Arc::clone(&f), cond, &cfg()).unwrap();
            assert!(r.satisfied(), "{cond} fails for LSDA-X(ζ=0)");
        }
        assert!(pb_check(f, Condition::EcNonPositivity, &cfg()).is_err());
    }

    #[test]
    fn lda_grid_is_one_dimensional() {
        let r = pb_check(Dfa::VwnRpa, Condition::EcScaling, &cfg()).unwrap();
        assert_eq!(r.n_s(), 1);
        assert_eq!(r.pass.len(), r.n_rs());
    }

    #[test]
    fn violation_bbox_none_when_clean() {
        let r = pb_check(Dfa::Pbe, Condition::EcNonPositivity, &cfg()).unwrap();
        assert!(r.violation_bbox().is_none());
        assert_eq!(r.violation_fraction(), 0.0);
    }
}
