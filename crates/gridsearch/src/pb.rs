//! The PB condition checker: uniform grids over any typed variable space,
//! numerical derivatives, pointwise checks.
//!
//! [`pb_check`] meshes the functional's [`xcv_expr::VarSpace`] — whatever
//! its axes are. The paper's workload produces the classic `rs × s` (× `α`)
//! grids; spin-resolved citizens produce ζ-aware 4-D meshes, including the
//! per-spin `(rs, s↑, s↓, ζ)` space of exact-spin-scaled exchange. Nothing
//! in the checker is hard-coded to two dimensions any more: pass/fail is
//! recorded per mesh point, and [`GridResult::violation_bbox`] returns
//! per-axis bounds for any dimension count.

use crate::gradient::gradient_axis0;
use rayon::prelude::*;
use xcv_conditions::{Condition, C_LO, RS_INF};
use xcv_expr::{AxisKind, VarSpace};
use xcv_functionals::{FunctionalHandle, IntoFunctional, XcvError};

/// Grid resolution per axis kind. The paper draws 10⁵ samples per axis; the
/// defaults here keep full-table runs interactive (tests and figures), with
/// every count a parameter so the benchmark harness can sweep them.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Samples along `rs`.
    pub n_rs: usize,
    /// Samples along the total reduced gradient `s`.
    pub n_s: usize,
    /// Samples along `α` — and along the per-spin `s↑`/`s↓` axes, which
    /// mesh coarsely for the same reason `α` does: the grid's cost is the
    /// product over axes, and the baseline's value is breadth, not depth.
    pub n_alpha: usize,
    /// Samples along `ζ` (spin-resolved spaces only).
    pub n_zeta: usize,
    /// Absolute tolerance absorbing floating-point noise in the pointwise
    /// checks (the numerical-derivative conditions are otherwise hypersensitive
    /// at the grid edges).
    pub tol: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            n_rs: 200,
            n_s: 200,
            n_alpha: 9,
            n_zeta: 9,
            tol: 1e-9,
        }
    }
}

impl GridConfig {
    /// Sample count for one axis (never below 2 — gradients need two
    /// points).
    pub fn axis_resolution(&self, kind: AxisKind) -> usize {
        let n = match kind {
            AxisKind::Rs => self.n_rs,
            AxisKind::S => self.n_s,
            AxisKind::Alpha | AxisKind::SUp | AxisKind::SDown => self.n_alpha,
            AxisKind::Zeta => self.n_zeta,
        };
        n.max(2)
    }
}

/// The outcome of a PB grid check: pass/fail per point of the full N-D mesh
/// over the functional's variable space.
#[derive(Clone, Debug)]
pub struct GridResult {
    pub functional: FunctionalHandle,
    pub condition: Condition,
    /// The sampled variable space (axis names, kinds, bounds).
    pub space: VarSpace,
    /// Sample coordinates per axis, in axis order.
    pub axes: Vec<Vec<f64>>,
    /// Row-major pass/fail over the mesh (axis 0 slowest, last axis
    /// fastest); length is the product of the axis sample counts.
    pub pass: Vec<bool>,
}

impl GridResult {
    pub fn ndim(&self) -> usize {
        self.axes.len()
    }

    /// Sample coordinates of one axis.
    pub fn axis_samples(&self, axis: usize) -> &[f64] {
        &self.axes[axis]
    }

    pub fn n_rs(&self) -> usize {
        self.axes[0].len()
    }

    /// Samples along the second axis (1 for LDA's one-dimensional grid).
    pub fn n_s(&self) -> usize {
        self.axes.get(1).map_or(1, Vec::len)
    }

    /// Number of mesh points behind each projected `(axis0, axis1)` cell.
    fn trailing(&self) -> usize {
        self.axes.iter().skip(2).map(Vec::len).product()
    }

    /// Exact pass/fail at a full mesh index (one entry per axis).
    pub fn pass_at_index(&self, index: &[usize]) -> bool {
        self.pass[flat_index(&self.axes, index)]
    }

    /// Projected pass/fail of the `(axis0, axis1)` cell: the cell passes iff
    /// every mesh point behind it (all trailing-axis slices) passes — the
    /// "fails if any slice fails" convention the 2-D renderings use.
    pub fn pass_at(&self, i0: usize, i1: usize) -> bool {
        let t = self.trailing();
        let base = (i0 * self.n_s() + i1) * t;
        self.pass[base..base + t].iter().all(|&p| p)
    }

    /// All mesh points behind the projected `(axis0, axis1)` cell, as
    /// full-dimensional coordinates (probe points for consistency checks).
    pub fn cell_points(&self, i0: usize, i1: usize) -> Vec<Vec<f64>> {
        let t = self.trailing();
        let base = (i0 * self.n_s() + i1) * t;
        (0..t).map(|r| mesh_point(&self.axes, base + r)).collect()
    }

    /// PB's verdict: satisfied iff every mesh point passes.
    pub fn satisfied(&self) -> bool {
        self.pass.iter().all(|&p| p)
    }

    pub fn n_violations(&self) -> usize {
        self.pass.iter().filter(|&&p| !p).count()
    }

    pub fn violation_fraction(&self) -> f64 {
        self.n_violations() as f64 / self.pass.len() as f64
    }

    /// Per-axis `(lo, hi)` bounds of the violating mesh points, if any —
    /// one pair per axis of the space, whatever its dimension.
    pub fn violation_bbox(&self) -> Option<Vec<(f64, f64)>> {
        let mut bb: Option<Vec<(f64, f64)>> = None;
        for (flat, &ok) in self.pass.iter().enumerate() {
            if !ok {
                let point = mesh_point(&self.axes, flat);
                let bb = bb.get_or_insert_with(|| {
                    vec![(f64::INFINITY, f64::NEG_INFINITY); self.axes.len()]
                });
                for (b, x) in bb.iter_mut().zip(point) {
                    b.0 = b.0.min(x);
                    b.1 = b.1.max(x);
                }
            }
        }
        bb
    }
}

fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    let h = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + h * i as f64).collect()
}

// The mesh layout, in one encode/decode pair: row-major over the axes in
// order, last axis fastest. Everything index-shaped above goes through
// these two.

/// Flat mesh offset of a full per-axis index.
fn flat_index(axes: &[Vec<f64>], index: &[usize]) -> usize {
    assert_eq!(index.len(), axes.len());
    index.iter().zip(axes).fold(0, |flat, (&i, ax)| {
        assert!(i < ax.len());
        flat * ax.len() + i
    })
}

/// The full-dimensional mesh point at a flat offset.
fn mesh_point(axes: &[Vec<f64>], mut flat: usize) -> Vec<f64> {
    let mut point = vec![0.0; axes.len()];
    for k in (0..axes.len()).rev() {
        let n = axes[k].len();
        point[k] = axes[k][flat % n];
        flat /= n;
    }
    point
}

/// Run the PB grid check for one (functional, condition) pair over the
/// functional's full variable space; [`XcvError::NotApplicable`] when the
/// condition does not apply. Accepts a `Dfa` variant or any registry handle
/// — ζ-resolved and per-spin citizens mesh their extra axes like any other.
pub fn pb_check(
    f: impl IntoFunctional,
    condition: Condition,
    config: &GridConfig,
) -> Result<GridResult, XcvError> {
    let f = f.into_handle();
    if !condition.applies_to(f.as_ref()) {
        return Err(XcvError::NotApplicable {
            functional: f.name(),
            condition: condition.name().to_string(),
        });
    }
    let space = f.var_space();
    assert_eq!(
        space.axis(0).kind,
        AxisKind::Rs,
        "the PB conditions differentiate along rs, which must be axis 0"
    );
    let axes: Vec<Vec<f64>> = space
        .axes()
        .iter()
        .map(|ax| linspace(ax.bounds.0, ax.bounds.1, config.axis_resolution(ax.kind)))
        .collect();
    let n0 = axes[0].len();
    let rest: usize = axes[1..].iter().map(Vec::len).product();
    let h_rs = axes[0][1] - axes[0][0];
    // F_c on the full mesh (row-major, rs slowest), parallel over rs rows.
    let fc: Vec<f64> = (0..n0)
        .into_par_iter()
        .flat_map_iter(|i| {
            let (f, axes) = (&f, &axes);
            (0..rest).map(move |t| f.f_c_at(&mesh_point(axes, i * rest + t)))
        })
        .collect();
    // rs-derivatives along axis 0 of the (n0 × rest) view.
    let dfc = gradient_axis0(&fc, n0, rest, h_rs);
    let d2fc = gradient_axis0(&dfc, n0, rest, h_rs);
    // F_c(∞) per trailing point (rs → RS_INF substitution).
    let fc_inf: Vec<f64> = (0..rest)
        .map(|t| {
            let mut p = mesh_point(&axes, t);
            p[0] = RS_INF;
            f.f_c_at(&p)
        })
        .collect();
    // F_xc where the condition needs it.
    let needs_fxc = matches!(condition, Condition::LiebOxford | Condition::LiebOxfordExt);
    let fxc: Option<Vec<f64>> = needs_fxc.then(|| {
        (0..n0)
            .into_par_iter()
            .flat_map_iter(|i| {
                let (f, axes) = (&f, &axes);
                (0..rest).map(move |t| {
                    f.f_xc_at(&mesh_point(axes, i * rest + t))
                        .unwrap_or(f64::NAN)
                })
            })
            .collect()
    });
    let pass: Vec<bool> = (0..n0 * rest)
        .into_par_iter()
        .map(|k| {
            point_pass(
                condition,
                axes[0][k / rest],
                fc[k],
                dfc[k],
                d2fc[k],
                fc_inf[k % rest],
                fxc.as_ref().map(|v| v[k]),
                config.tol,
            )
        })
        .collect();
    Ok(GridResult {
        functional: f,
        condition,
        space,
        axes,
        pass,
    })
}

/// The pointwise local-condition check, given grid-derived derivatives.
#[allow(clippy::too_many_arguments)]
fn point_pass(
    condition: Condition,
    rs: f64,
    fc: f64,
    dfc: f64,
    d2fc: f64,
    fc_inf: f64,
    fxc: Option<f64>,
    tol: f64,
) -> bool {
    match condition {
        Condition::EcNonPositivity => fc >= -tol,
        Condition::EcScaling => dfc >= -tol,
        Condition::UcMonotonicity => d2fc >= -2.0 / rs * dfc - tol,
        Condition::TcUpperBound => dfc <= (fc_inf - fc) / rs + tol,
        Condition::ConjTcUpperBound => dfc <= fc / rs + tol,
        Condition::LiebOxford => fxc.is_some_and(|f| f + rs * dfc <= C_LO + tol),
        Condition::LiebOxfordExt => fxc.is_some_and(|f| f <= C_LO + tol),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_conditions::S_MAX;
    use xcv_functionals::{Dfa, SpinResolved, SpinScaledX};

    fn cfg() -> GridConfig {
        GridConfig {
            n_rs: 120,
            n_s: 120,
            n_alpha: 5,
            n_zeta: 5,
            tol: 1e-9,
        }
    }

    #[test]
    fn inapplicable_is_error() {
        assert!(matches!(
            pb_check(Dfa::Lyp, Condition::LiebOxford, &cfg()),
            Err(XcvError::NotApplicable { .. })
        ));
        assert!(pb_check(Dfa::VwnRpa, Condition::LiebOxfordExt, &cfg()).is_err());
    }

    #[test]
    fn vwn_satisfies_all_applicable() {
        for cond in Condition::all() {
            if let Ok(r) = pb_check(Dfa::VwnRpa, cond, &cfg()) {
                assert!(r.satisfied(), "{cond} should pass for VWN RPA");
            }
        }
    }

    #[test]
    fn lyp_fails_all_applicable() {
        // Table II row LYP: PB finds counterexamples for every applicable
        // condition.
        for cond in Condition::all() {
            if let Ok(r) = pb_check(Dfa::Lyp, cond, &cfg()) {
                assert!(!r.satisfied(), "{cond} should fail for LYP");
                assert!(r.n_violations() > 0);
            }
        }
    }

    #[test]
    fn lyp_ec1_violation_region_matches_paper() {
        // Fig. 2a/2d: violations at s ≳ 1.66, across rs.
        let r = pb_check(Dfa::Lyp, Condition::EcNonPositivity, &cfg()).unwrap();
        let bb = r.violation_bbox().unwrap();
        assert_eq!(bb.len(), 2, "GGA grid has two axes");
        let (s_min, s_max) = bb[1];
        assert!(
            (1.3..2.2).contains(&s_min),
            "violations should start near s≈1.7, got {s_min}"
        );
        assert!((s_max - S_MAX).abs() < 0.1, "violations reach the s edge");
    }

    #[test]
    fn pbe_ec1_and_ec5_pass() {
        let r = pb_check(Dfa::Pbe, Condition::EcNonPositivity, &cfg()).unwrap();
        assert!(r.satisfied());
        let r = pb_check(Dfa::Pbe, Condition::LiebOxfordExt, &cfg()).unwrap();
        assert!(r.satisfied());
    }

    #[test]
    fn pbe_ec7_fails_in_upper_left() {
        let r = pb_check(Dfa::Pbe, Condition::ConjTcUpperBound, &cfg()).unwrap();
        assert!(!r.satisfied());
        let bb = r.violation_bbox().unwrap();
        assert!(bb[0].0 < 1.0, "violations reach small rs");
        assert!(bb[1].1 > 3.0, "violations reach large s");
        // And the small-s / large-rs corner passes (Fig. 1c).
        assert!(r.pass_at(r.n_rs() - 1, 3));
    }

    #[test]
    fn scan_passes_ec1_on_grid() {
        // PB (testing) finds no SCAN violations even though the verifier
        // times out — the "not inconsistent" cells of Table II.
        let small = GridConfig {
            n_rs: 60,
            n_s: 60,
            n_alpha: 5,
            n_zeta: 2,
            tol: 1e-9,
        };
        let r = pb_check(Dfa::Scan, Condition::EcNonPositivity, &small).unwrap();
        assert!(r.satisfied());
        assert_eq!(r.ndim(), 3);
        assert_eq!(r.pass.len(), 60 * 60 * 5);
    }

    #[test]
    fn exchange_carrying_lda_samples_its_zeta_axis() {
        // The spin-scaled LSDA exchange is a 4-D citizen: the baseline now
        // meshes its ζ axis instead of sampling the ζ = 0 restriction.
        // F_xc = ((1+ζ)^{4/3}+(1−ζ)^{4/3})/2 ≤ 2^{1/3} < C_LO everywhere.
        use std::sync::Arc;
        let f = Arc::new(SpinResolved::lsda_x());
        for cond in [Condition::LiebOxford, Condition::LiebOxfordExt] {
            let r = pb_check(Arc::clone(&f), cond, &cfg()).unwrap();
            assert_eq!(r.ndim(), 4);
            assert_eq!(r.axes[3], vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
            assert!(r.satisfied(), "{cond} fails for LSDA-X(ζ)");
        }
        assert!(pb_check(f, Condition::EcNonPositivity, &cfg()).is_err());
    }

    #[test]
    fn b88_spin_violation_bbox_is_4d() {
        // The per-spin B88 citizen violates the LO extension where the
        // scaled channel gradient is large; the bbox reports bounds for all
        // four axes of (rs, s↑, s↓, ζ).
        let f = std::sync::Arc::new(SpinScaledX::b88());
        let r = pb_check(f, Condition::LiebOxfordExt, &cfg()).unwrap();
        assert_eq!(r.ndim(), 4);
        assert!(!r.satisfied(), "B88(ζ) violates EC5 on the PB box");
        let bb = r.violation_bbox().unwrap();
        assert_eq!(bb.len(), 4);
        // Violations span rs freely (F_x is rs-independent)...
        assert!(bb[0].0 < 0.1 && bb[0].1 > 4.9, "{bb:?}");
        // ...need a large per-spin gradient on some channel...
        assert!(bb[1].1 > 4.9 && bb[2].1 > 4.9, "{bb:?}");
        // ...and reach the fully-polarized edges.
        assert!(bb[3].0 <= -0.99 && bb[3].1 >= 0.99, "{bb:?}");
        // The ζ = 0, s↑ = s↓ = s diagonal still shows the base violation at
        // the s edge (exact mesh indexing on the 4-D grid).
        let n1 = r.axes[1].len() - 1;
        let n2 = r.axes[2].len() - 1;
        assert!(
            !r.pass_at_index(&[0, n1, n2, 2]),
            "ζ=0 slice keeps B88's violation"
        );
    }

    #[test]
    fn pbe_x_spin_passes_lieb_oxford() {
        // 2^{1/3}·F_x^{PBE}(5) ≈ 2.14 < 2.27: the spin-scaled PBE exchange
        // satisfies both LO conditions at every polarization.
        let f = std::sync::Arc::new(SpinScaledX::pbe_x());
        for cond in [Condition::LiebOxford, Condition::LiebOxfordExt] {
            let r = pb_check(std::sync::Arc::clone(&f), cond, &cfg()).unwrap();
            assert!(r.satisfied(), "{cond} fails for PBE-X(ζ)");
            assert!(r.violation_bbox().is_none());
        }
    }

    #[test]
    fn lda_grid_is_one_dimensional() {
        let r = pb_check(Dfa::VwnRpa, Condition::EcScaling, &cfg()).unwrap();
        assert_eq!(r.ndim(), 1);
        assert_eq!(r.n_s(), 1);
        assert_eq!(r.pass.len(), r.n_rs());
        assert_eq!(r.cell_points(3, 0), vec![vec![r.axes[0][3]]]);
    }

    #[test]
    fn violation_bbox_none_when_clean() {
        let r = pb_check(Dfa::Pbe, Condition::EcNonPositivity, &cfg()).unwrap();
        assert!(r.violation_bbox().is_none());
        assert_eq!(r.violation_fraction(), 0.0);
    }

    #[test]
    fn projected_cells_and_points_cover_the_mesh() {
        let small = GridConfig {
            n_rs: 6,
            n_s: 5,
            n_alpha: 3,
            n_zeta: 2,
            tol: 1e-9,
        };
        let r = pb_check(Dfa::Scan, Condition::EcNonPositivity, &small).unwrap();
        // Every projected cell expands to one point per α sample, with the
        // right leading coordinates.
        let pts = r.cell_points(2, 3);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert_eq!(p.len(), 3);
            assert_eq!(p[0], r.axes[0][2]);
            assert_eq!(p[1], r.axes[1][3]);
        }
        // pass_at is the conjunction of the exact trailing slices.
        let all = (0..3).all(|k| r.pass_at_index(&[2, 3, k]));
        assert_eq!(r.pass_at(2, 3), all);
    }
}
