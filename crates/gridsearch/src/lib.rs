//! The Pederson–Burke (PB) grid-search baseline (Section IV-A of the paper).
//!
//! For a DFA and a condition, PB samples the reduced-variable domain on a
//! uniform grid, evaluates the LIBXC implementation (here: the closed-form
//! scalar code paths of `xcv-functionals`) at every grid point, forms the
//! derivatives the local conditions need **numerically** — NumPy-`gradient`
//! style finite differences on the grid — and checks the condition pointwise.
//! The condition is declared satisfied when every grid point passes.
//!
//! This is exactly the methodology XCVerifier is compared against in
//! Table II: it scales effortlessly but proves nothing between grid points
//! and inherits finite-difference error in the derivative conditions.
//!
//! The checker meshes the functional's typed `xcv_expr::VarSpace`, whatever
//! its axes: the paper's `rs × s` (× `α`) grids, the ζ-aware 4-D meshes of
//! the spin-resolved citizens, and the per-spin `(rs, s↑, s↓, ζ)` space of
//! exact-spin-scaled exchange all run through the same N-D code path.

mod gradient;
mod pb;

pub use gradient::{gradient_1d, gradient_axis0};
pub use pb::{pb_check, GridConfig, GridResult};
