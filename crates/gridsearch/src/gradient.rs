//! NumPy-`gradient`-compatible finite differences on uniform grids.
//!
//! Interior points use second-order central differences; boundary points use
//! one-sided second-order differences (NumPy's `edge_order=2`), which is what
//! derivative-based condition checks need to avoid spurious edge violations.

/// Gradient of a 1-D array sampled with uniform spacing `h`.
pub fn gradient_1d(f: &[f64], h: f64) -> Vec<f64> {
    let n = f.len();
    assert!(n >= 2, "gradient needs at least two samples");
    assert!(h > 0.0);
    let mut g = vec![0.0; n];
    if n == 2 {
        let d = (f[1] - f[0]) / h;
        g[0] = d;
        g[1] = d;
        return g;
    }
    for i in 1..n - 1 {
        g[i] = (f[i + 1] - f[i - 1]) / (2.0 * h);
    }
    // Second-order one-sided stencils at the edges.
    g[0] = (-3.0 * f[0] + 4.0 * f[1] - f[2]) / (2.0 * h);
    g[n - 1] = (3.0 * f[n - 1] - 4.0 * f[n - 2] + f[n - 3]) / (2.0 * h);
    g
}

/// Gradient along axis 0 of a row-major 2-D array (`n0` rows of length `n1`),
/// with uniform row spacing `h`.
pub fn gradient_axis0(f: &[f64], n0: usize, n1: usize, h: f64) -> Vec<f64> {
    assert_eq!(f.len(), n0 * n1);
    assert!(n0 >= 2);
    let mut g = vec![0.0; f.len()];
    let at = |i: usize, j: usize| f[i * n1 + j];
    for j in 0..n1 {
        if n0 == 2 {
            let d = (at(1, j) - at(0, j)) / h;
            g[j] = d;
            g[n1 + j] = d;
            continue;
        }
        for i in 1..n0 - 1 {
            g[i * n1 + j] = (at(i + 1, j) - at(i - 1, j)) / (2.0 * h);
        }
        g[j] = (-3.0 * at(0, j) + 4.0 * at(1, j) - at(2, j)) / (2.0 * h);
        g[(n0 - 1) * n1 + j] =
            (3.0 * at(n0 - 1, j) - 4.0 * at(n0 - 2, j) + at(n0 - 3, j)) / (2.0 * h);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_linear() {
        let h = 0.1;
        let f: Vec<f64> = (0..11).map(|i| 2.0 + 3.0 * (i as f64) * h).collect();
        for g in gradient_1d(&f, h) {
            assert!((g - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_on_quadratic_including_edges() {
        // Second-order stencils differentiate quadratics exactly.
        let h = 0.05;
        let xs: Vec<f64> = (0..21).map(|i| (i as f64) * h).collect();
        let f: Vec<f64> = xs.iter().map(|x| x * x - x + 1.0).collect();
        let g = gradient_1d(&f, h);
        for (x, gi) in xs.iter().zip(&g) {
            assert!((gi - (2.0 * x - 1.0)).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn converges_on_smooth_function() {
        let check = |n: usize| -> f64 {
            let h = 1.0 / (n - 1) as f64;
            let f: Vec<f64> = (0..n).map(|i| ((i as f64) * h).exp()).collect();
            let g = gradient_1d(&f, h);
            (0..n)
                .map(|i| (g[i] - ((i as f64) * h).exp()).abs())
                .fold(0.0, f64::max)
        };
        let coarse = check(51);
        let fine = check(201);
        assert!(fine < coarse / 8.0, "2nd order: {coarse} -> {fine}");
    }

    #[test]
    fn two_point_fallback() {
        let g = gradient_1d(&[1.0, 3.0], 0.5);
        assert_eq!(g, vec![4.0, 4.0]);
    }

    #[test]
    fn axis0_matches_columnwise_1d() {
        let (n0, n1, h) = (7, 3, 0.2);
        let mut f = vec![0.0; n0 * n1];
        for i in 0..n0 {
            for j in 0..n1 {
                let x = (i as f64) * h;
                f[i * n1 + j] = (1.0 + j as f64) * x * x + x;
            }
        }
        let g = gradient_axis0(&f, n0, n1, h);
        for j in 0..n1 {
            let col: Vec<f64> = (0..n0).map(|i| f[i * n1 + j]).collect();
            let g1 = gradient_1d(&col, h);
            for i in 0..n0 {
                assert!((g[i * n1 + j] - g1[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic]
    fn too_few_samples_panics() {
        gradient_1d(&[1.0], 0.1);
    }
}
