//! Table II: classifying agreement between XCVerifier and the PB baseline.

use xcv_core::{RegionMap, TableMark};
use xcv_grid::GridResult;

/// The paper's Table II cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// Both methods find counterexamples, in overlapping regions (the
    /// paper's ⊙).
    Consistent,
    /// Neither method finds a counterexample (the paper's ⊙*, "not
    /// inconsistent": PB passes; the verifier verifies or partially
    /// verifies).
    NotInconsistent,
    /// The verifier timed out everywhere — no comparison possible (?).
    Unknown,
    /// The verifier found a (re-checked, exact) counterexample at a point the
    /// grid never sampled. Not a contradiction — the grid only claims its
    /// sample points pass — but worth distinguishing: it is precisely the
    /// failure mode of testing that formal verification exists to close.
    VerifierOnly,
    /// The two methods genuinely contradict (a grid violation inside a
    /// verified region, or overlapping claims that cannot both hold). Does
    /// not occur in the paper's evaluation; kept as a soundness alarm.
    Inconsistent,
    /// The condition does not apply to the DFA (−).
    NotApplicable,
}

impl Consistency {
    pub fn symbol(&self) -> &'static str {
        match self {
            Consistency::Consistent => "C",
            Consistency::NotInconsistent => "C*",
            Consistency::Unknown => "?",
            Consistency::VerifierOnly => "C+",
            Consistency::Inconsistent => "X!",
            Consistency::NotApplicable => "-",
        }
    }
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Classify one DFA-condition pair from the verifier's region map and the
/// PB grid result.
///
/// "Consistent" for counterexample pairs additionally requires spatial
/// agreement: some PB-violating grid point must fall inside (or near) a
/// verifier counterexample region, and vice versa at the bounding-box level.
pub fn classify(map: &RegionMap, grid: &GridResult) -> Consistency {
    let mark = map.table_mark();
    match mark {
        TableMark::NotApplicable => Consistency::NotApplicable,
        TableMark::Unknown => Consistency::Unknown,
        TableMark::Counterexample => {
            if grid.satisfied() {
                // Verifier found a violation the grid missed — possible
                // because the grid proves nothing between its points.
                return Consistency::VerifierOnly;
            }
            if ce_regions_overlap(map, grid) {
                Consistency::Consistent
            } else {
                Consistency::Inconsistent
            }
        }
        TableMark::Verified | TableMark::PartiallyVerified => {
            if grid.satisfied() {
                Consistency::NotInconsistent
            } else {
                // PB reports violations where the verifier saw none. Check
                // whether those violations fall only in undecided regions —
                // then the methods are still not inconsistent.
                if grid_violations_only_in_undecided(map, grid) {
                    Consistency::NotInconsistent
                } else {
                    Consistency::Inconsistent
                }
            }
        }
    }
}

/// Does some PB-violating grid point land in a verifier counterexample
/// region (on any trailing-axis slice for ≥3-D meshes)? The grid's mesh
/// points are full-dimensional, so they probe the region map directly,
/// whatever the variable space — ζ and per-spin axes included.
fn ce_regions_overlap(map: &RegionMap, grid: &GridResult) -> bool {
    for i in 0..grid.n_rs() {
        for j in 0..grid.n_s() {
            if !grid.pass_at(i, j) {
                for point in grid.cell_points(i, j) {
                    if let Some(xcv_core::RegionStatus::Counterexample(_)) = map.status_at(&point) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Are all PB violations compatible with the verifier's map? A violation
/// contradicts only when *every* probe for its projected cell lies in a
/// verified region (the projection does not record which trailing slice
/// failed, so a single non-verified probe keeps the methods compatible).
fn grid_violations_only_in_undecided(map: &RegionMap, grid: &GridResult) -> bool {
    for i in 0..grid.n_rs() {
        for j in 0..grid.n_s() {
            if !grid.pass_at(i, j) {
                let all_verified = grid
                    .cell_points(i, j)
                    .iter()
                    .all(|p| matches!(map.status_at(p), Some(xcv_core::RegionStatus::Verified)));
                if all_verified {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_core::{Region, RegionStatus};
    use xcv_solver::BoxDomain;

    fn map_with(status: RegionStatus) -> RegionMap {
        let dom = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        RegionMap::new(
            dom.clone(),
            vec![Region {
                domain: dom,
                status,
            }],
        )
    }

    fn grid(pass: Vec<bool>, n: usize) -> GridResult {
        use xcv_functionals::IntoFunctional;
        let step = 1.0 / (n - 1) as f64;
        let samples: Vec<f64> = (0..n).map(|i| i as f64 * step).collect();
        GridResult {
            functional: xcv_functionals::Dfa::Pbe.into_handle(),
            condition: xcv_conditions::Condition::EcNonPositivity,
            space: xcv_expr::VarSpace::from_arity(2),
            axes: vec![samples.clone(), samples],
            pass,
        }
    }

    #[test]
    fn both_clean_is_not_inconsistent() {
        let m = map_with(RegionStatus::Verified);
        let g = grid(vec![true; 16], 4);
        assert_eq!(classify(&m, &g), Consistency::NotInconsistent);
    }

    #[test]
    fn both_find_ce_consistent() {
        let m = map_with(RegionStatus::Counterexample(vec![0.5, 0.5]));
        let g = grid(vec![false; 16], 4);
        assert_eq!(classify(&m, &g), Consistency::Consistent);
    }

    #[test]
    fn verifier_timeout_is_unknown() {
        let m = map_with(RegionStatus::Timeout);
        let g = grid(vec![true; 16], 4);
        assert_eq!(classify(&m, &g), Consistency::Unknown);
    }

    #[test]
    fn verifier_ce_grid_clean_is_verifier_only() {
        let m = map_with(RegionStatus::Counterexample(vec![0.5, 0.5]));
        let g = grid(vec![true; 16], 4);
        assert_eq!(classify(&m, &g), Consistency::VerifierOnly);
    }

    #[test]
    fn grid_violation_inside_verified_region_is_inconsistent() {
        let m = map_with(RegionStatus::Verified);
        let g = grid(vec![false; 16], 4);
        assert_eq!(classify(&m, &g), Consistency::Inconsistent);
    }

    #[test]
    fn grid_violation_in_timeout_region_tolerated() {
        // Half verified, half timeout; violations only in the timeout half.
        let dom = BoxDomain::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        let m = RegionMap::new(
            dom,
            vec![
                Region {
                    domain: BoxDomain::from_bounds(&[(0.0, 0.5), (0.0, 1.0)]),
                    status: RegionStatus::Verified,
                },
                Region {
                    domain: BoxDomain::from_bounds(&[(0.5, 1.0), (0.0, 1.0)]),
                    status: RegionStatus::Timeout,
                },
            ],
        );
        let n = 4;
        // Violations only where rs > 0.5 (i >= 2).
        let pass: Vec<bool> = (0..n * n).map(|k| (k / n) < 2).collect();
        assert_eq!(classify(&m, &grid(pass, n)), Consistency::NotInconsistent);
    }
}
