//! Table I and Table II generation, rendered directly from campaign reports.
//!
//! Columns are the campaign's functionals (in builder order), so tables
//! scale from the paper's five DFAs to any registry — including
//! runtime-registered DSL functionals.

use crate::consistency::{classify, Consistency};
use xcv_conditions::Condition;
use xcv_core::{CampaignReport, Encoder, RegionMap, TableMark, Verifier};
use xcv_functionals::{FunctionalHandle, IntoFunctional, Registry, XcvError};
use xcv_grid::{pb_check, GridConfig, GridResult};

/// Everything computed for one (functional, condition) pair.
pub struct PairResult {
    pub functional: FunctionalHandle,
    pub condition: Condition,
    pub map: Option<RegionMap>,
    pub grid: Option<GridResult>,
    /// Set when encoding failed for a reason other than inapplicability
    /// (e.g. metadata promises an exchange part the implementation lacks) —
    /// such a cell is undecided, not a legitimate `−`.
    pub encode_error: Option<XcvError>,
}

impl PairResult {
    pub fn mark(&self) -> TableMark {
        if self.encode_error.is_some() {
            return TableMark::Unknown;
        }
        self.map
            .as_ref()
            .map_or(TableMark::NotApplicable, RegionMap::table_mark)
    }

    pub fn consistency(&self) -> Consistency {
        if self.encode_error.is_some() {
            return Consistency::Unknown;
        }
        match (&self.map, &self.grid) {
            (Some(m), Some(g)) => classify(m, g),
            _ => Consistency::NotApplicable,
        }
    }
}

/// Run the verifier and the PB baseline for one pair.
pub fn run_pair(
    f: impl IntoFunctional,
    condition: Condition,
    verifier: &Verifier,
    grid_cfg: &GridConfig,
) -> PairResult {
    let functional = f.into_handle();
    let (map, encode_error) = match Encoder::encode(&functional, condition) {
        Ok(p) => (Some(verifier.verify(&p)), None),
        Err(XcvError::NotApplicable { .. }) => (None, None),
        Err(e) => (None, Some(e)),
    };
    let grid = pb_check(&functional, condition, grid_cfg).ok();
    PairResult {
        functional,
        condition,
        map,
        grid,
        encode_error,
    }
}

/// Table I: verification outcomes for all (functional, condition) pairs.
pub struct Table1 {
    /// Column labels, in campaign order.
    pub columns: Vec<String>,
    /// Row conditions, in campaign order.
    pub rows: Vec<Condition>,
    pub cells: Vec<(String, Condition, TableMark)>,
}

/// Table II: consistency between the verifier and PB.
pub struct Table2 {
    pub columns: Vec<String>,
    pub rows: Vec<Condition>,
    pub cells: Vec<(String, Condition, Consistency)>,
}

/// Render any cell grid in the paper's layout (conditions as rows,
/// functionals as columns).
fn render_grid<T: std::fmt::Display>(
    title: &str,
    columns: &[String],
    rows: &[Condition],
    cells: &[(String, Condition, T)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str("| Local condition |");
    for c in columns {
        out.push_str(&format!(" {c} |"));
    }
    out.push('\n');
    out.push_str(&"|---".repeat(columns.len() + 1));
    out.push_str("|\n");
    for &cond in rows {
        out.push_str(&format!("| {} ({}) ", cond.name(), cond.equation()));
        for name in columns {
            let cell = cells
                .iter()
                .find(|(n, c, _)| n == name && *c == cond)
                .map(|(_, _, m)| format!("{m}"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!("| {cell} "));
        }
        out.push_str("|\n");
    }
    out
}

impl Table1 {
    /// Build Table I from a campaign report (no re-verification: the marks
    /// are read straight off the report).
    pub fn from_campaign(report: &CampaignReport) -> Table1 {
        Table1 {
            columns: report.functionals.iter().map(|f| f.name()).collect(),
            rows: report.conditions.clone(),
            cells: report
                .pairs
                .iter()
                .map(|p| (p.functional.name(), p.condition, p.mark))
                .collect(),
        }
    }

    /// Markdown in the layout of the paper's Table I.
    pub fn render_markdown(&self) -> String {
        render_grid(
            "Table I: verifying local conditions for DFT exact conditions (OK = verified, OK* = partially verified, CE = counterexample, ? = timeout/inconclusive, - = not applicable)",
            &self.columns,
            &self.rows,
            &self.cells,
        )
    }

    pub fn mark(&self, functional: &str, cond: Condition) -> Option<TableMark> {
        self.cells
            .iter()
            .find(|(n, c, _)| n.eq_ignore_ascii_case(functional) && *c == cond)
            .map(|(_, _, m)| *m)
    }

    /// Count cells by predicate (for summary lines like the paper's
    /// "13 verified or refuted, 7 partial, 11 timeouts").
    pub fn count(&self, pred: impl Fn(TableMark) -> bool) -> usize {
        self.cells.iter().filter(|(_, _, m)| pred(*m)).count()
    }
}

impl Table2 {
    /// Build Table II from a campaign report: the verifier's region maps
    /// come from the report, the PB baseline runs here per applicable pair.
    pub fn from_campaign(report: &CampaignReport, grid_cfg: &GridConfig) -> Table2 {
        let cells = report
            .pairs
            .iter()
            .map(|p| {
                let consistency = match &p.map {
                    // Applicable pairs the campaign skipped (budget or
                    // cancellation) are undecided, not `−`.
                    None if p.skipped == Some(xcv_core::SkipReason::NotApplicable) => {
                        Consistency::NotApplicable
                    }
                    None => Consistency::Unknown,
                    Some(map) => match pb_check(&p.functional, p.condition, grid_cfg) {
                        Ok(grid) => classify(map, &grid),
                        Err(_) => Consistency::NotApplicable,
                    },
                };
                (p.functional.name(), p.condition, consistency)
            })
            .collect();
        Table2 {
            columns: report.functionals.iter().map(|f| f.name()).collect(),
            rows: report.conditions.clone(),
            cells,
        }
    }

    /// Markdown in the layout of the paper's Table II.
    pub fn render_markdown(&self) -> String {
        render_grid(
            "Table II: comparison between XCVerifier and the PB approach (C = consistent, C* = not inconsistent, ? = verifier timeout, - = not applicable)",
            &self.columns,
            &self.rows,
            &self.cells,
        )
    }

    pub fn cell(&self, functional: &str, cond: Condition) -> Option<Consistency> {
        self.cells
            .iter()
            .find(|(n, c, _)| n.eq_ignore_ascii_case(functional) && *c == cond)
            .map(|(_, _, m)| *m)
    }
}

/// Run Table I over the paper's five DFAs with one verifier config (the
/// campaign path; `−` where inapplicable).
pub fn run_table1(verifier: &Verifier) -> Table1 {
    let report = xcv_core::Campaign::builder()
        .registry(&Registry::builtin())
        .config(verifier.config.clone())
        .build()
        .expect("builtin registry is non-empty")
        .run();
    Table1::from_campaign(&report)
}

/// Run Table II over the paper's five DFAs (verifier + PB on every cell).
pub fn run_table2(verifier: &Verifier, grid_cfg: &GridConfig) -> Table2 {
    let report = xcv_core::Campaign::builder()
        .registry(&Registry::builtin())
        .config(verifier.config.clone())
        .build()
        .expect("builtin registry is non-empty")
        .run();
    Table2::from_campaign(&report, grid_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_core::VerifierConfig;
    use xcv_functionals::Dfa;
    use xcv_solver::{DeltaSolver, SolveBudget};

    fn fast_verifier() -> Verifier {
        Verifier::new(VerifierConfig {
            split_threshold: 1.25,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(4_000)),
            parallel: true,
            parallel_depth: 3,
            max_depth: 4,
            pair_deadline_ms: None,
        })
    }

    fn small_grid() -> GridConfig {
        GridConfig {
            n_rs: 60,
            n_s: 60,
            n_alpha: 3,
            n_zeta: 2,
            tol: 1e-9,
        }
    }

    #[test]
    fn run_pair_lyp_ec1() {
        let pr = run_pair(
            Dfa::Lyp,
            Condition::EcNonPositivity,
            &fast_verifier(),
            &small_grid(),
        );
        assert_eq!(pr.mark(), TableMark::Counterexample);
        assert_eq!(pr.consistency(), Consistency::Consistent);
    }

    #[test]
    fn run_pair_inapplicable() {
        let pr = run_pair(
            Dfa::VwnRpa,
            Condition::LiebOxford,
            &fast_verifier(),
            &small_grid(),
        );
        assert_eq!(pr.mark(), TableMark::NotApplicable);
        assert_eq!(pr.consistency(), Consistency::NotApplicable);
    }

    #[test]
    fn table1_markdown_shape() {
        // Only check rendering mechanics here (full runs live in the repro
        // binary): build a table with stub marks.
        let t = Table1 {
            columns: ["PBE", "LYP", "AM05", "SCAN", "VWN RPA"]
                .map(String::from)
                .to_vec(),
            rows: Condition::all().to_vec(),
            cells: vec![(
                "PBE".into(),
                Condition::EcNonPositivity,
                TableMark::Verified,
            )],
        };
        let md = t.render_markdown();
        assert!(md.contains("| Local condition | PBE | LYP | AM05 | SCAN | VWN RPA |"));
        assert!(md.lines().count() >= 10, "{md}");
        assert!(md.contains("Ec non-positivity"));
        assert!(md.contains("| OK "));
    }

    #[test]
    fn table1_from_campaign_dynamic_columns() {
        // A campaign over a runtime-extended set renders extra columns
        // without any enum involvement in the table layer.
        let report = xcv_core::Campaign::builder()
            .functionals([Dfa::VwnRpa, Dfa::RScan])
            .conditions([Condition::EcNonPositivity])
            .config(fast_verifier().config)
            .build()
            .unwrap()
            .run();
        let t = Table1::from_campaign(&report);
        assert_eq!(t.columns, vec!["VWN RPA", "rSCAN(reg)"]);
        let md = t.render_markdown();
        assert!(md.contains("| VWN RPA | rSCAN(reg) |"), "{md}");
        assert_eq!(t.cells.len(), 2);
    }

    #[test]
    fn table2_lookup() {
        let t = Table2 {
            columns: vec!["LYP".into()],
            rows: Condition::all().to_vec(),
            cells: vec![("LYP".into(), Condition::EcScaling, Consistency::Consistent)],
        };
        assert_eq!(
            t.cell("LYP", Condition::EcScaling),
            Some(Consistency::Consistent)
        );
        assert_eq!(t.cell("PBE", Condition::EcScaling), None);
    }

    #[test]
    fn count_helper() {
        let t = Table1 {
            columns: vec!["PBE".into(), "LYP".into()],
            rows: Condition::all().to_vec(),
            cells: vec![
                (
                    "PBE".into(),
                    Condition::EcNonPositivity,
                    TableMark::Verified,
                ),
                (
                    "LYP".into(),
                    Condition::EcNonPositivity,
                    TableMark::Counterexample,
                ),
            ],
        };
        assert_eq!(t.count(|m| m == TableMark::Verified), 1);
        assert_eq!(t.count(|m| m != TableMark::NotApplicable), 2);
    }
}
