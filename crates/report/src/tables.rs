//! Table I and Table II generation.

use crate::consistency::{classify, Consistency};
use xcv_conditions::Condition;
use xcv_core::{Encoder, RegionMap, TableMark, Verifier};
use xcv_functionals::Dfa;
use xcv_grid::{pb_check, GridConfig, GridResult};

/// Everything computed for one DFA-condition pair.
pub struct PairResult {
    pub dfa: Dfa,
    pub condition: Condition,
    pub map: Option<RegionMap>,
    pub grid: Option<GridResult>,
}

impl PairResult {
    pub fn mark(&self) -> TableMark {
        self.map
            .as_ref()
            .map_or(TableMark::NotApplicable, RegionMap::table_mark)
    }

    pub fn consistency(&self) -> Consistency {
        match (&self.map, &self.grid) {
            (Some(m), Some(g)) => classify(m, g),
            _ => Consistency::NotApplicable,
        }
    }
}

/// Run the verifier and the PB baseline for one pair.
pub fn run_pair(
    dfa: Dfa,
    condition: Condition,
    verifier: &Verifier,
    grid_cfg: &GridConfig,
) -> PairResult {
    let map = Encoder::encode(dfa, condition).map(|p| verifier.verify(&p));
    let grid = pb_check(dfa, condition, grid_cfg);
    PairResult {
        dfa,
        condition,
        map,
        grid,
    }
}

/// Table I: verification outcomes for all DFA-condition pairs.
pub struct Table1 {
    pub cells: Vec<(Dfa, Condition, TableMark)>,
}

/// Table II: consistency between the verifier and PB.
pub struct Table2 {
    pub cells: Vec<(Dfa, Condition, Consistency)>,
}

/// The paper's column order.
fn columns() -> [Dfa; 5] {
    [Dfa::Pbe, Dfa::Lyp, Dfa::Am05, Dfa::Scan, Dfa::VwnRpa]
}

/// Run Table I (the verifier over all 35 cells; `−` where inapplicable).
pub fn run_table1(verifier: &Verifier) -> Table1 {
    let mut cells = Vec::new();
    for cond in Condition::all() {
        for dfa in columns() {
            let mark = match Encoder::encode(dfa, cond) {
                Some(p) => verifier.verify(&p).table_mark(),
                None => TableMark::NotApplicable,
            };
            cells.push((dfa, cond, mark));
        }
    }
    Table1 { cells }
}

/// Run Table II (verifier + PB on every cell).
pub fn run_table2(verifier: &Verifier, grid_cfg: &GridConfig) -> Table2 {
    let mut cells = Vec::new();
    for cond in Condition::all() {
        for dfa in columns() {
            let pr = run_pair(dfa, cond, verifier, grid_cfg);
            cells.push((dfa, cond, pr.consistency()));
        }
    }
    Table2 { cells }
}

fn render_grid<T: std::fmt::Display>(
    title: &str,
    cells: &[(Dfa, Condition, T)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str("| Local condition | PBE | LYP | AM05 | SCAN | VWN RPA |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for cond in Condition::all() {
        out.push_str(&format!("| {} ({}) ", cond.name(), cond.equation()));
        for dfa in columns() {
            let cell = cells
                .iter()
                .find(|(d, c, _)| *d == dfa && *c == cond)
                .map(|(_, _, m)| format!("{m}"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!("| {cell} "));
        }
        out.push_str("|\n");
    }
    out
}

impl Table1 {
    /// Markdown in the layout of the paper's Table I.
    pub fn render_markdown(&self) -> String {
        render_grid(
            "Table I: verifying local conditions for DFT exact conditions (OK = verified, OK* = partially verified, CE = counterexample, ? = timeout/inconclusive, - = not applicable)",
            &self.cells,
        )
    }

    pub fn mark(&self, dfa: Dfa, cond: Condition) -> Option<TableMark> {
        self.cells
            .iter()
            .find(|(d, c, _)| *d == dfa && *c == cond)
            .map(|(_, _, m)| *m)
    }

    /// Count cells by predicate (for summary lines like the paper's
    /// "13 verified or refuted, 7 partial, 11 timeouts").
    pub fn count(&self, pred: impl Fn(TableMark) -> bool) -> usize {
        self.cells.iter().filter(|(_, _, m)| pred(*m)).count()
    }
}

impl Table2 {
    /// Markdown in the layout of the paper's Table II.
    pub fn render_markdown(&self) -> String {
        render_grid(
            "Table II: comparison between XCVerifier and the PB approach (C = consistent, C* = not inconsistent, ? = verifier timeout, - = not applicable)",
            &self.cells,
        )
    }

    pub fn cell(&self, dfa: Dfa, cond: Condition) -> Option<Consistency> {
        self.cells
            .iter()
            .find(|(d, c, _)| *d == dfa && *c == cond)
            .map(|(_, _, m)| *m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_core::VerifierConfig;
    use xcv_solver::{DeltaSolver, SolveBudget};

    fn fast_verifier() -> Verifier {
        Verifier::new(VerifierConfig {
            split_threshold: 1.25,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(4_000)),
            parallel: true,
            max_depth: 4,
            pair_deadline_ms: None,
        })
    }

    fn small_grid() -> GridConfig {
        GridConfig {
            n_rs: 60,
            n_s: 60,
            n_alpha: 3,
            tol: 1e-9,
        }
    }

    #[test]
    fn run_pair_lyp_ec1() {
        let pr = run_pair(
            Dfa::Lyp,
            Condition::EcNonPositivity,
            &fast_verifier(),
            &small_grid(),
        );
        assert_eq!(pr.mark(), TableMark::Counterexample);
        assert_eq!(pr.consistency(), Consistency::Consistent);
    }

    #[test]
    fn run_pair_inapplicable() {
        let pr = run_pair(
            Dfa::VwnRpa,
            Condition::LiebOxford,
            &fast_verifier(),
            &small_grid(),
        );
        assert_eq!(pr.mark(), TableMark::NotApplicable);
        assert_eq!(pr.consistency(), Consistency::NotApplicable);
    }

    #[test]
    fn table1_markdown_shape() {
        // Only check rendering mechanics here (full runs live in the repro
        // binary): build a table with stub marks.
        let t = Table1 {
            cells: vec![(Dfa::Pbe, Condition::EcNonPositivity, TableMark::Verified)],
        };
        let md = t.render_markdown();
        assert!(md.contains("| Local condition | PBE | LYP | AM05 | SCAN | VWN RPA |"));
        assert!(md.lines().count() >= 10, "{md}");
        assert!(md.contains("Ec non-positivity"));
        assert!(md.contains("| OK "));
    }

    #[test]
    fn table2_lookup() {
        let t = Table2 {
            cells: vec![(
                Dfa::Lyp,
                Condition::EcScaling,
                Consistency::Consistent,
            )],
        };
        assert_eq!(
            t.cell(Dfa::Lyp, Condition::EcScaling),
            Some(Consistency::Consistent)
        );
        assert_eq!(t.cell(Dfa::Pbe, Condition::EcScaling), None);
    }

    #[test]
    fn count_helper() {
        let t = Table1 {
            cells: vec![
                (Dfa::Pbe, Condition::EcNonPositivity, TableMark::Verified),
                (Dfa::Lyp, Condition::EcNonPositivity, TableMark::Counterexample),
            ],
        };
        assert_eq!(t.count(|m| m == TableMark::Verified), 1);
        assert_eq!(t.count(|m| m != TableMark::NotApplicable), 2);
    }
}
