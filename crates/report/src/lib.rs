//! Reporting: region-map rendering (the paper's Figures 1 and 2), Table I
//! and Table II generation, and the PB-vs-verifier consistency
//! classification.

mod consistency;
mod render;
mod tables;

pub use consistency::{classify, Consistency};
pub use render::{ascii_grid_map, ascii_region_map, svg_region_map};
pub use tables::{run_pair, run_table1, run_table2, PairResult, Table1, Table2};
