//! ASCII and SVG rendering of region maps (Figures 1 and 2 of the paper).
//!
//! Conventions follow the paper's figures: the horizontal axis is `s`
//! (0 → S_MAX left to right), the vertical axis is `rs` (RS_MAX at the top,
//! RS_MIN at the bottom). For LDA functionals (1-D domain) the map collapses
//! to a single column.
//!
//! ASCII glyphs: `+` verified, `x` counterexample, `?` inconclusive,
//! `T` timeout, `.` grid-pass, `#` grid-fail.

use xcv_core::{RegionMap, RegionStatus};
use xcv_grid::GridResult;

/// Render a verifier region map as ASCII art (`width` × `height` character
/// cells sampled at cell midpoints).
pub fn ascii_region_map(map: &RegionMap, width: usize, height: usize) -> String {
    let ndim = map.domain.ndim();
    let rs_dim = map.domain.dim(0);
    let mut out = String::with_capacity((width + 8) * (height + 2));
    let rows = height;
    for row in 0..rows {
        // rs decreases downward in the paper's figures — top row = RS_MAX.
        let frac_rs = 1.0 - (row as f64 + 0.5) / rows as f64;
        let rs = rs_dim.lo + frac_rs * (rs_dim.hi - rs_dim.lo);
        out.push_str(&format!("{rs:5.2} |"));
        if ndim == 1 {
            let status = map.status_at(&[rs]);
            out.push(status.map_or(' ', RegionStatus::glyph));
        } else {
            let s_dim = map.domain.dim(1);
            for col in 0..width {
                let frac_s = (col as f64 + 0.5) / width as f64;
                let s = s_dim.lo + frac_s * (s_dim.hi - s_dim.lo);
                // Meta-GGA maps are rendered at the α mid-slice.
                let point: Vec<f64> = match ndim {
                    2 => vec![rs, s],
                    _ => vec![rs, s, map.domain.dim(2).midpoint()],
                };
                out.push(map.status_at(&point).map_or(' ', RegionStatus::glyph));
            }
        }
        out.push('\n');
    }
    if ndim >= 2 {
        let s_dim = map.domain.dim(1);
        out.push_str("      +");
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "       s: {:.2} .. {:.2}   (rows: rs, top = {:.2})\n",
            s_dim.lo, s_dim.hi, rs_dim.hi
        ));
    } else {
        out.push_str(&format!("       (rs column, top = {:.2})\n", rs_dim.hi));
    }
    out
}

/// Render a PB grid result as ASCII art (`.` pass, `#` fail), same
/// orientation as [`ascii_region_map`].
pub fn ascii_grid_map(grid: &GridResult, width: usize, height: usize) -> String {
    let n_rs = grid.n_rs();
    let n_s = grid.n_s();
    let mut out = String::new();
    for row in 0..height {
        let frac_rs = 1.0 - (row as f64 + 0.5) / height as f64;
        let i_rs = ((frac_rs * (n_rs - 1) as f64).round() as usize).min(n_rs - 1);
        out.push_str(&format!("{:5.2} |", grid.axis_samples(0)[i_rs]));
        if n_s == 1 {
            out.push(if grid.pass_at(i_rs, 0) { '.' } else { '#' });
        } else {
            for col in 0..width {
                let frac_s = (col as f64 + 0.5) / width as f64;
                let i_s = ((frac_s * (n_s - 1) as f64).round() as usize).min(n_s - 1);
                out.push(if grid.pass_at(i_rs, i_s) { '.' } else { '#' });
            }
        }
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(width.max(1)));
    out.push('\n');
    out
}

fn status_color(status: &RegionStatus) -> &'static str {
    match status {
        RegionStatus::Verified => "#4daf4a",          // green
        RegionStatus::Counterexample(_) => "#e41a1c", // red
        RegionStatus::Inconclusive => "#ffdd55",      // yellow
        RegionStatus::Timeout => "#999999",           // gray
        RegionStatus::Cancelled => "#bb77dd",         // purple
    }
}

/// Render a verifier region map as an SVG document (2-D domains; meta-GGA
/// maps use the α mid-slice by drawing each region's (rs, s) footprint).
pub fn svg_region_map(map: &RegionMap, title: &str) -> String {
    let w = 640.0;
    let h = 480.0;
    let rs_dim = map.domain.dim(0);
    let (s_lo, s_hi) = if map.domain.ndim() >= 2 {
        let d = map.domain.dim(1);
        (d.lo, d.hi)
    } else {
        (0.0, 1.0)
    };
    let sx = |s: f64| (s - s_lo) / (s_hi - s_lo) * w;
    // rs increases upward.
    let sy = |rs: f64| h - (rs - rs_dim.lo) / (rs_dim.hi - rs_dim.lo) * h;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {w} {h2}\">\n",
        w as u32,
        (h as u32) + 40,
        h2 = h + 40.0
    ));
    svg.push_str(&format!(
        "<text x=\"8\" y=\"{}\" font-size=\"14\" font-family=\"sans-serif\">{}</text>\n",
        h + 24.0,
        xml_escape(title)
    ));
    for r in &map.regions {
        let rs0 = r.domain.dim(0).lo.max(rs_dim.lo);
        let rs1 = r.domain.dim(0).hi.min(rs_dim.hi);
        let (s0, s1) = if map.domain.ndim() >= 2 {
            (r.domain.dim(1).lo.max(s_lo), r.domain.dim(1).hi.min(s_hi))
        } else {
            (s_lo, s_hi)
        };
        let x = sx(s0);
        let y = sy(rs1);
        let rw = (sx(s1) - sx(s0)).max(0.5);
        let rh = (sy(rs0) - sy(rs1)).max(0.5);
        svg.push_str(&format!(
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{rw:.1}\" height=\"{rh:.1}\" \
             fill=\"{}\" stroke=\"white\" stroke-width=\"0.3\"/>\n",
            status_color(&r.status)
        ));
        if let RegionStatus::Counterexample(pt) = &r.status {
            let (cx, cy) = if map.domain.ndim() >= 2 {
                (sx(pt[1]), sy(pt[0]))
            } else {
                (w / 2.0, sy(pt[0]))
            };
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"middle\">x</text>\n",
                cx,
                cy + 3.0
            ));
        }
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_core::Region;
    use xcv_solver::BoxDomain;

    fn demo_map() -> RegionMap {
        let dom = BoxDomain::from_bounds(&[(0.0, 4.0), (0.0, 4.0)]);
        let mk = |b: [(f64, f64); 2], st: RegionStatus| Region {
            domain: BoxDomain::from_bounds(&b),
            status: st,
        };
        RegionMap::new(
            dom,
            vec![
                mk([(0.0, 2.0), (0.0, 4.0)], RegionStatus::Verified),
                mk(
                    [(2.0, 4.0), (0.0, 2.0)],
                    RegionStatus::Counterexample(vec![3.0, 1.0]),
                ),
                mk([(2.0, 4.0), (2.0, 4.0)], RegionStatus::Timeout),
            ],
        )
    }

    #[test]
    fn ascii_map_has_expected_glyphs() {
        let art = ascii_region_map(&demo_map(), 16, 8);
        assert!(art.contains('+'), "{art}");
        assert!(art.contains('x'), "{art}");
        assert!(art.contains('T'), "{art}");
        // Top-left of the art = high rs, low s = the counterexample quadrant.
        let first_row = art.lines().next().unwrap();
        assert!(first_row.contains('x'), "{art}");
    }

    #[test]
    fn ascii_map_row_count() {
        let art = ascii_region_map(&demo_map(), 10, 5);
        // 5 data rows + axis + caption.
        assert_eq!(art.lines().count(), 7);
    }

    #[test]
    fn svg_well_formed_and_colored() {
        let svg = svg_region_map(&demo_map(), "PBE <Ec non-positivity>");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("#4daf4a") && svg.contains("#e41a1c") && svg.contains("#999999"));
        assert!(svg.contains("&lt;Ec non-positivity&gt;"));
        assert_eq!(svg.matches("<rect").count(), 3);
    }

    #[test]
    fn grid_map_renders_fail_band() {
        let cfg = xcv_grid::GridConfig {
            n_rs: 60,
            n_s: 60,
            n_alpha: 3,
            n_zeta: 2,
            tol: 1e-9,
        };
        let g = xcv_grid::pb_check(
            xcv_functionals::Dfa::Lyp,
            xcv_conditions::Condition::EcNonPositivity,
            &cfg,
        )
        .unwrap();
        let art = ascii_grid_map(&g, 40, 16);
        assert!(art.contains('#'), "LYP EC1 must show a failing band\n{art}");
        assert!(art.contains('.'));
        // Fails on the right side (large s): the last data column glyphs.
        let first_row: &str = art.lines().next().unwrap();
        assert!(first_row.trim_end().ends_with('#'), "{art}");
    }

    #[test]
    fn lda_map_single_column() {
        let dom = BoxDomain::from_bounds(&[(0.0, 1.0)]);
        let map = RegionMap::new(
            dom.clone(),
            vec![Region {
                domain: dom,
                status: RegionStatus::Verified,
            }],
        );
        let art = ascii_region_map(&map, 10, 4);
        assert!(art.contains('+'));
    }
}
