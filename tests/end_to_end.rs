//! Cross-crate integration tests: encoder → solver → verifier → baseline →
//! consistency, on coarse settings that keep CI fast while exercising the
//! same code paths as the full reproduction runs.

use xcverifier::prelude::*;

fn verifier(nodes: u64, threshold: f64) -> Verifier {
    Verifier::new(VerifierConfig {
        split_threshold: threshold,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(nodes)),
        parallel: true,
        parallel_depth: 3,
        max_depth: 5,
        pair_deadline_ms: None,
    })
}

fn grid_cfg() -> GridConfig {
    GridConfig {
        n_rs: 80,
        n_s: 80,
        n_alpha: 3,
        n_zeta: 2,
        tol: 1e-9,
    }
}

#[test]
fn vwn_rpa_column_fully_verified() {
    // Table I, VWN RPA column: EC1, EC2, EC6 are ✓ (whole domain).
    for cond in [
        Condition::EcNonPositivity,
        Condition::EcScaling,
        Condition::TcUpperBound,
    ] {
        let p = Encoder::encode(Dfa::VwnRpa, cond).unwrap();
        let map = verifier(60_000, 0.05).verify(&p);
        assert_eq!(
            map.table_mark(),
            TableMark::Verified,
            "VWN RPA should fully verify {cond}"
        );
    }
}

#[test]
fn vwn_rpa_uc_monotonicity_verified() {
    // The paper highlights that VWN RPA verifies Uc monotonicity where other
    // functionals time out.
    let p = Encoder::encode(Dfa::VwnRpa, Condition::UcMonotonicity).unwrap();
    let map = verifier(120_000, 0.05).verify(&p);
    assert!(
        matches!(
            map.table_mark(),
            TableMark::Verified | TableMark::PartiallyVerified
        ),
        "got {:?}",
        map.table_mark()
    );
}

#[test]
fn lyp_all_five_conditions_refuted() {
    // Table I, LYP column: ✗ for every applicable condition.
    for cond in Condition::all() {
        let Ok(p) = Encoder::encode(Dfa::Lyp, cond) else {
            continue;
        };
        let map = verifier(30_000, 0.3).verify(&p);
        assert_eq!(
            map.table_mark(),
            TableMark::Counterexample,
            "LYP should be refuted on {cond}"
        );
        // Every witness must be a true violation and lie inside the domain.
        for ce in map.counterexamples() {
            assert!(!p.psi().holds_at(ce));
            assert!(
                p.domain.contains_point(ce),
                "witness outside domain: {ce:?}"
            );
        }
    }
}

#[test]
fn lyp_ec1_counterexample_region_at_large_s() {
    // Fig. 2d: counterexamples at s ≳ 1.66; everything below s ≈ 1 verified.
    let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
    let map = verifier(60_000, 0.15).verify(&p);
    for ce in map.counterexamples() {
        assert!(ce[1] > 1.2, "EC1 violations live at large s, got {ce:?}");
    }
    // The small-s half of the domain is verified.
    assert!(matches!(
        map.status_at(&[2.5, 0.5]),
        Some(RegionStatus::Verified)
    ));
}

#[test]
fn pbe_conjectured_tc_upper_left_refuted() {
    // Fig. 1f: PBE violates EC7 in the small-rs / large-s corner and
    // satisfies it at large rs / small s.
    let p = Encoder::encode(Dfa::Pbe, Condition::ConjTcUpperBound).unwrap();
    let map = verifier(30_000, 0.3).verify(&p);
    assert_eq!(map.table_mark(), TableMark::Counterexample);
    assert!(map
        .counterexamples()
        .iter()
        .any(|c| c[0] < 2.5 && c[1] > 1.0));
}

#[test]
fn pbe_lo_extension_verified() {
    // Fig. 1e: F_xc <= 2.27 verified on the whole domain for PBE.
    let p = Encoder::encode(Dfa::Pbe, Condition::LiebOxfordExt).unwrap();
    let map = verifier(60_000, 0.3).verify(&p);
    assert!(
        matches!(
            map.table_mark(),
            TableMark::Verified | TableMark::PartiallyVerified
        ),
        "got {:?}",
        map.table_mark()
    );
    // No counterexamples, at minimum.
    assert!(map.counterexamples().is_empty());
}

#[test]
fn scan_hard_at_small_budget_but_sound() {
    // Table I SCAN column: all ? at the paper's budgets. Our ICP solver is
    // somewhat stronger on the ζ=0 SCAN (it verifies part of the domain; see
    // EXPERIMENTS.md), but at a small budget a sizable fraction must remain
    // undecided — and, by soundness, it must NOT claim a counterexample
    // (SCAN satisfies EC1 by construction).
    let p = Encoder::encode(Dfa::Scan, Condition::EcNonPositivity).unwrap();
    let v = Verifier::new(VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(300)),
        parallel: false,
        parallel_depth: 3,
        max_depth: 2,
        pair_deadline_ms: None,
    });
    let map = v.verify(&p);
    assert_ne!(map.table_mark(), TableMark::Counterexample);
    let undecided =
        map.volume_fraction(|s| matches!(s, RegionStatus::Timeout | RegionStatus::Inconclusive));
    assert!(undecided > 0.2, "undecided fraction {undecided}");
    // And with a zero budget, everything times out (the paper's picture).
    let v0 = Verifier::new(VerifierConfig {
        split_threshold: 5.0,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(0)),
        parallel: false,
        parallel_depth: 3,
        max_depth: 1,
        pair_deadline_ms: None,
    });
    let map0 = v0.verify(&p);
    assert_eq!(map0.table_mark(), TableMark::Unknown);
}

#[test]
fn region_maps_partition_their_domains() {
    for (dfa, cond) in [
        (Dfa::VwnRpa, Condition::EcNonPositivity),
        (Dfa::Lyp, Condition::EcScaling),
        (Dfa::Pbe, Condition::TcUpperBound),
    ] {
        let p = Encoder::encode(dfa, cond).unwrap();
        let map = verifier(5_000, 0.6).verify(&p);
        assert!(map.covers_probe_grid(7), "{dfa}/{cond} map has gaps");
    }
}

#[test]
fn table2_consistency_lyp_and_pbe() {
    // LYP rows: both methods find counterexamples in overlapping regions.
    let pr = xcverifier::report::run_pair(
        Dfa::Lyp,
        Condition::EcNonPositivity,
        &verifier(30_000, 0.3),
        &grid_cfg(),
    );
    assert_eq!(pr.consistency(), Consistency::Consistent);
    // PBE / EC5: neither finds a violation — "not inconsistent".
    let pr = xcverifier::report::run_pair(
        Dfa::Pbe,
        Condition::LiebOxfordExt,
        &verifier(60_000, 0.3),
        &grid_cfg(),
    );
    assert!(matches!(
        pr.consistency(),
        Consistency::NotInconsistent | Consistency::Consistent
    ));
}

#[test]
fn verifier_unsat_boxes_contain_no_grid_violations() {
    // Soundness cross-check between the two methods: no PB-violating grid
    // point may fall inside a verifier-verified region.
    for (dfa, cond) in [
        (Dfa::Lyp, Condition::EcNonPositivity),
        (Dfa::Lyp, Condition::EcScaling),
        (Dfa::Pbe, Condition::ConjTcUpperBound),
    ] {
        let p = Encoder::encode(dfa, cond).unwrap();
        let map = verifier(30_000, 0.3).verify(&p);
        let grid = pb_check(dfa, cond, &grid_cfg()).unwrap();
        for i in 0..grid.n_rs() {
            for j in 0..grid.n_s() {
                if !grid.pass_at(i, j) {
                    let pt = [grid.axis_samples(0)[i], grid.axis_samples(1)[j]];
                    assert!(
                        !matches!(map.status_at(&pt), Some(RegionStatus::Verified)),
                        "{dfa}/{cond}: grid violation at {pt:?} inside a verified region"
                    );
                }
            }
        }
    }
}

#[test]
fn dsl_compiled_functional_verifies_like_builder() {
    // Compile PBE correlation from its DSL source, build EC1 by hand, and
    // check the verifier agrees with the registry-built encoding.
    let mut vars = xcverifier::functionals::canonical_vars();
    let eps_c = xcverifier::expr::dsl::compile(
        xcverifier::functionals::dsl_sources::PBE_C,
        "pbe_c",
        &mut vars,
    )
    .unwrap();
    let f_c = -(eps_c * var(RS)) / xcverifier::functionals::constants::A_X;
    let psi = Atom::new(f_c, Rel::Ge);
    let negation = Formula::single(psi.negate());
    // On a domain away from the ε_c → 0 margins (rs not tiny, s moderate)
    // the solver proves EC1 for the DSL-compiled PBE outright.
    let domain = BoxDomain::from_bounds(&[(1.0, 5.0), (0.0, 2.0)]);
    let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(400_000));
    assert_eq!(solver.solve(&domain, &negation), Outcome::Unsat);
    // On the full PB domain no *valid* counterexample may ever appear.
    let full = BoxDomain::from_bounds(&[(1e-4, 5.0), (0.0, 5.0)]);
    match solver.solve(&full, &negation) {
        Outcome::DeltaSat(m) => assert!(
            psi.holds_at(&m),
            "spurious exact counterexample for PBE EC1 at {m:?}"
        ),
        Outcome::Unsat | Outcome::Timeout => {}
    }
}

#[test]
fn full_applicability_matrix() {
    // 31 applicable pairs; the 4 inapplicable cells are the LO rows of the
    // exchange-free DFAs.
    let pairs = applicable_pairs();
    assert_eq!(pairs.len(), 31);
    for name in ["LYP", "VWN RPA"] {
        for cond in [Condition::LiebOxford, Condition::LiebOxfordExt] {
            assert!(!pairs.iter().any(|(f, c)| f.name() == name && *c == cond));
        }
    }
}

#[test]
fn blyp_violates_lieb_oxford_extension() {
    // Extension result: the paper's DFA set has no Lieb–Oxford violation;
    // B88 exchange (the BLYP combination) exceeds C_LO = 2.27 near the s = 5
    // edge of the PB domain — both the verifier and the grid find it.
    let p = Encoder::encode(Dfa::Blyp, Condition::LiebOxfordExt).unwrap();
    let map = verifier(60_000, 0.15).verify(&p);
    assert_eq!(map.table_mark(), TableMark::Counterexample);
    for ce in map.counterexamples() {
        assert!(ce[1] > 4.0, "LO violations live at the s edge: {ce:?}");
        assert!(!p.psi().holds_at(ce));
    }
    let grid = pb_check(Dfa::Blyp, Condition::LiebOxfordExt, &grid_cfg()).unwrap();
    assert!(
        !grid.satisfied(),
        "grid should also flag B88's LO violation"
    );
    let (s0, _) = grid.violation_bbox().unwrap()[1];
    assert!(s0 > 4.0, "grid violations start near the edge, got s={s0}");
}
