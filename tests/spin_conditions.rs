//! Spin-resolved condition checking (extension beyond the paper's ζ = 0
//! restriction): the solver and verifier run unchanged over a (rs, s, ζ)
//! domain built from the spin module's expressions.

use xcverifier::functionals::spin;
use xcverifier::prelude::*;

/// F_c over (rs, s, ζ): `-ε_c(rs, s, ζ) · rs / A_X`.
fn f_c_spin_pbe() -> Expr {
    -(spin::eps_c_pbe_expr() * var(RS)) / xcverifier::functionals::constants::A_X
}

#[test]
fn spin_resolved_pbe_ec1_no_valid_counterexample() {
    // ε_c^{PBE}(rs, s, ζ) <= 0 for all ζ — the spin-general EC1. The solver
    // must never produce a *valid* counterexample; away from the ε_c → 0
    // margins it should prove the box outright.
    let psi = Atom::new(f_c_spin_pbe(), Rel::Ge);
    let negation = Formula::single(psi.negate());
    // Variables: rs (0), s (1), alpha (2, unused), zeta (3).
    let easy = BoxDomain::new(vec![
        interval(1.0, 5.0),
        interval(0.0, 2.0),
        interval(0.0, 0.0),
        interval(-0.5, 0.5),
    ]);
    let solver = DeltaSolver::new(1e-3, SolveBudget::millis(3_000));
    match solver.solve(&easy, &negation) {
        Outcome::Unsat => {}
        Outcome::DeltaSat(m) => {
            assert!(psi.holds_at(&m), "spurious spin-EC1 counterexample {m:?}");
        }
        Outcome::Timeout => {}
    }
}

#[test]
fn spin_resolved_lsda_exchange_scaling_condition() {
    // The LSDA exchange enhancement relative to the unpolarized gas equals
    // ((1+ζ)^{4/3}+(1−ζ)^{4/3})/2 >= 1 — provable by the solver over ζ.
    // Encoded directly in ζ (any form carrying rs in both numerator and
    // denominator falls to the interval dependency problem; the real encoder
    // likewise cancels ε_x^unif algebraically).
    let z = var(spin::ZETA);
    let p = constant(4.0 / 3.0);
    let fx = 0.5 * ((constant(1.0) + &z).pow(&p) + (constant(1.0) - &z).pow(&p));
    let psi = Atom::new(fx - 1.0, Rel::Ge);
    let negation = Formula::single(psi.negate());
    // Away from the ζ = 0 equality point the margin is positive and the
    // solver proves the condition outright.
    let strict = BoxDomain::new(vec![
        interval(0.1, 5.0),
        interval(0.0, 0.0),
        interval(0.0, 0.0),
        interval(0.1, 1.0),
    ]);
    let solver = DeltaSolver::new(1e-4, SolveBudget::millis(3_000));
    assert_eq!(solver.solve(&strict, &negation), Outcome::Unsat);
    // Across ζ = 0 the condition holds with equality, so a δ-SAT answer with
    // an *invalid* model (the paper's "inconclusive") is acceptable — but a
    // valid counterexample never is.
    let with_boundary = BoxDomain::new(vec![
        interval(0.1, 5.0),
        interval(0.0, 0.0),
        interval(0.0, 0.0),
        interval(-1.0, 1.0),
    ]);
    match solver.solve(&with_boundary, &negation) {
        Outcome::DeltaSat(m) => assert!(psi.holds_at(&m), "valid CE at {m:?}"),
        Outcome::Unsat | Outcome::Timeout => {}
    }
}

#[test]
fn spin_stiffness_sign() {
    // The PW92 spin stiffness α_c(rs) is negative (our MALPHA fit is −α_c,
    // hence positive): check ε_c(ζ) decreases in |ζ|... i.e. correlation
    // weakens with polarization at every rs — the solver proves
    // ε_c(rs, ζ) >= ε_c(rs, 0) cannot be violated by more than δ is false;
    // instead verify pointwise monotonicity densely.
    for i in 0..20 {
        let rs = 0.1 + 4.9 * (i as f64) / 19.0;
        let mut prev = spin::eps_c_pw92(rs, 0.0);
        for k in 1..=10 {
            let z = k as f64 / 10.0;
            let v = spin::eps_c_pw92(rs, z);
            assert!(v >= prev - 1e-12, "ε_c not weakening at rs={rs}, ζ={z}");
            prev = v;
        }
    }
}

#[test]
fn b88_spin_scaled_violates_lieb_oxford_extension() {
    // The per-spin B88 citizen: near full polarization with a large s↑,
    // F_x(s↑, s↓, ζ) = ((1+ζ)^{4/3} F(s↑) + (1−ζ)^{4/3} F(s↓))/2 exceeds
    // C_LO = 2.27 on the whole sub-box (min ≈ 2.5 at ζ = 0.9, s↑ = 4.5), so
    // the solver must produce a δ-SAT model that *exactly* violates ψ —
    // the end-to-end 4-D counterexample of the per-spin variable model.
    let f = std::sync::Arc::new(SpinScaledX::b88());
    let p = Encoder::encode(f, Condition::LiebOxfordExt).unwrap();
    assert_eq!(p.space.names(), vec!["rs", "s_up", "s_dn", "zeta"]);
    // rs free, s↑ ∈ [4.5, 5], s↓ free, ζ ∈ [0.9, 1].
    let corner = BoxDomain::new(vec![
        interval(1e-4, 5.0),
        interval(4.5, 5.0),
        interval(0.0, 5.0),
        interval(0.9, 1.0),
    ]);
    let solver = DeltaSolver::new(1e-3, SolveBudget::millis(3_000));
    match solver.solve(&corner, p.negation()) {
        Outcome::DeltaSat(m) => {
            assert!(
                !p.psi().holds_at(&m),
                "witness must exactly violate ψ: {m:?}"
            );
            // The witness reads through the typed axes: s↑ large, ζ near 1.
            assert!(m[1] >= 4.5 && m[3] >= 0.9, "{m:?}");
        }
        other => panic!("expected a counterexample on the violating corner, got {other:?}"),
    }
    // The mirrored corner (ζ near −1, s↓ large) violates by spin symmetry.
    let mirrored = BoxDomain::new(vec![
        interval(1e-4, 5.0),
        interval(0.0, 5.0),
        interval(4.5, 5.0),
        interval(-1.0, -0.9),
    ]);
    match solver.solve(&mirrored, p.negation()) {
        Outcome::DeltaSat(m) => assert!(!p.psi().holds_at(&m)),
        other => panic!("expected the mirrored counterexample, got {other:?}"),
    }
}

#[test]
fn pbe_x_spin_scaled_lieb_oxford_verifies() {
    // 2^{1/3}·F_x^{PBE}(s ≤ 5) ≈ 2.14 < 2.27: away from the dependency-
    // problem-heavy ζ interior, the solver proves the spin-scaled PBE
    // exchange satisfies the LO extension outright.
    let f = std::sync::Arc::new(SpinScaledX::pbe_x());
    let p = Encoder::encode(f, Condition::LiebOxfordExt).unwrap();
    let polarized = BoxDomain::new(vec![
        interval(1e-4, 5.0),
        interval(0.0, 5.0),
        interval(0.0, 5.0),
        interval(0.9, 1.0),
    ]);
    let solver = DeltaSolver::new(1e-3, SolveBudget::millis(3_000));
    assert_eq!(solver.solve(&polarized, p.negation()), Outcome::Unsat);
    // On the full ζ range a δ-SAT answer with an invalid model is
    // acceptable (inconclusive), a valid counterexample never is.
    match solver.solve(&p.domain, p.negation()) {
        Outcome::DeltaSat(m) => assert!(p.psi().holds_at(&m), "spurious witness {m:?}"),
        Outcome::Unsat | Outcome::Timeout => {}
    }
}

#[test]
fn spin_derivative_condition_solver_ready() {
    // ∂F_c/∂rs >= 0 (EC2) extends to the spin-resolved PBE: encode with the
    // symbolic ζ-aware derivative and check there is no valid counterexample
    // on a moderate box.
    let fc = f_c_spin_pbe();
    let psi = Atom::new(fc.diff(RS), Rel::Ge);
    let negation = Formula::single(psi.negate());
    let dom = BoxDomain::new(vec![
        interval(0.5, 3.0),
        interval(0.0, 2.0),
        interval(0.0, 0.0),
        interval(-0.8, 0.8),
    ]);
    let solver = DeltaSolver::new(1e-3, SolveBudget::millis(2_000));
    match solver.solve(&dom, &negation) {
        Outcome::DeltaSat(m) => assert!(psi.holds_at(&m), "spin EC2 violated at {m:?}"),
        Outcome::Unsat | Outcome::Timeout => {}
    }
}
