//! Property-based tests (proptest) of the core soundness invariants:
//!
//! * the fundamental theorem of interval arithmetic (enclosure of every
//!   pointwise result) for random expressions over random boxes;
//! * HC4 contraction never discards a solution;
//! * symbolic differentiation agrees with central differences;
//! * the compiled tape agrees with the recursive evaluator;
//! * solver `Unsat` answers are never contradicted by dense sampling.

use proptest::prelude::*;
use xcverifier::prelude::*;

// ---------------------------------------------------------------------------
// Random expression generation
// ---------------------------------------------------------------------------

/// A recipe for building a deterministic random expression over 2 variables.
#[derive(Debug, Clone)]
enum Recipe {
    Var(u8),
    Const(f64),
    Add(Box<Recipe>, Box<Recipe>),
    Mul(Box<Recipe>, Box<Recipe>),
    Div(Box<Recipe>, Box<Recipe>),
    Neg(Box<Recipe>),
    PowI(Box<Recipe>, i32),
    Exp(Box<Recipe>),
    LnShift(Box<Recipe>), // ln(1 + x^2 + e): strictly positive argument
    Sqrt2(Box<Recipe>),   // sqrt(x^2): always defined
    Atan(Box<Recipe>),
    Tanh(Box<Recipe>),
    Abs(Box<Recipe>),
    Min(Box<Recipe>, Box<Recipe>),
    Max(Box<Recipe>, Box<Recipe>),
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0u8..2).prop_map(Recipe::Var),
        (-3.0f64..3.0).prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Div(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Recipe::Neg(Box::new(a))),
            (inner.clone(), 1i32..4).prop_map(|(a, n)| Recipe::PowI(Box::new(a), n)),
            inner.clone().prop_map(|a| Recipe::Exp(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::LnShift(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Sqrt2(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Atan(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Tanh(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Abs(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Recipe::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(r: &Recipe) -> Expr {
    match r {
        Recipe::Var(v) => var(*v as u32),
        Recipe::Const(c) => constant(*c),
        Recipe::Add(a, b) => build(a) + build(b),
        Recipe::Mul(a, b) => build(a) * build(b),
        Recipe::Div(a, b) => build(a) / build(b),
        Recipe::Neg(a) => -build(a),
        Recipe::PowI(a, n) => build(a).powi(*n),
        Recipe::Exp(a) => (build(a) * 0.25).exp(), // damp to avoid overflow
        Recipe::LnShift(a) => (build(a).powi(2) + 1.0).ln(),
        Recipe::Sqrt2(a) => build(a).powi(2).sqrt(),
        Recipe::Atan(a) => build(a).atan(),
        Recipe::Tanh(a) => build(a).tanh(),
        Recipe::Abs(a) => build(a).abs(),
        Recipe::Min(a, b) => build(a).min(&build(b)),
        Recipe::Max(a, b) => build(a).max(&build(b)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fundamental theorem: for any expression and any point inside a box,
    /// the interval evaluation over the box contains the pointwise value.
    #[test]
    fn interval_evaluation_encloses_pointwise(
        recipe in recipe_strategy(),
        x0 in -2.0f64..2.0,
        x1 in -2.0f64..2.0,
        w0 in 0.0f64..1.0,
        w1 in 0.0f64..1.0,
        f0 in 0.0f64..1.0,
        f1 in 0.0f64..1.0,
    ) {
        let e = build(&recipe);
        let dom = [
            interval(x0, x0 + w0),
            interval(x1, x1 + w1),
        ];
        let point = [x0 + f0 * w0, x1 + f1 * w1];
        let v = e.eval(&point).unwrap();
        if v.is_finite() {
            let enc = e.eval_interval(&dom);
            prop_assert!(
                !enc.is_empty() && enc.lo <= v && v <= enc.hi,
                "{v} not in {enc:?} for {e}"
            );
        }
    }

    /// The compiled tape and the recursive evaluator agree bit-for-bit on
    /// finite results (NaN-for-NaN otherwise).
    #[test]
    fn tape_matches_recursive(
        recipe in recipe_strategy(),
        x0 in -2.0f64..2.0,
        x1 in -2.0f64..2.0,
    ) {
        let e = build(&recipe);
        let tape = xcverifier::expr::Tape::compile(&e);
        let mut scratch = tape.scratch();
        let a = e.eval(&[x0, x1]).unwrap();
        let b = tape.eval(&[x0, x1], &mut scratch);
        if a.is_nan() {
            prop_assert!(b.is_nan());
        } else {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
    }

    /// HC4 contraction never discards a point that satisfies the formula.
    #[test]
    fn hc4_preserves_solutions(
        recipe in recipe_strategy(),
        x0 in -1.5f64..1.5,
        x1 in -1.5f64..1.5,
    ) {
        let e = build(&recipe);
        let v = e.eval(&[x0, x1]).unwrap();
        prop_assume!(v.is_finite());
        // Constraint satisfied at (x0, x1) by construction: e <= v + 1.
        let atom = Atom::new(e - constant(v + 1.0), Rel::Le);
        let formula = Formula::single(atom);
        let b = BoxDomain::from_bounds(&[(-1.5, 1.5), (-1.5, 1.5)]);
        let mut hc4 = xcverifier::solver::contract::Hc4::new(&formula);
        match hc4.contract(&b) {
            xcverifier::solver::contract::Contraction::Empty => {
                prop_assert!(false, "solution box declared empty");
            }
            xcverifier::solver::contract::Contraction::Box(nb) => {
                prop_assert!(
                    nb.contains_point(&[x0, x1]),
                    "contraction lost ({x0}, {x1})"
                );
            }
        }
    }

    /// Symbolic derivatives match central differences wherever both are
    /// finite and tame.
    #[test]
    fn diff_matches_central_difference(
        recipe in recipe_strategy(),
        x0 in -1.0f64..1.0,
        x1 in -1.0f64..1.0,
    ) {
        let e = build(&recipe);
        let d = e.diff(0);
        let h = 1e-5;
        let f = |x: f64| e.eval(&[x, x1]).unwrap();
        let (fp, fm) = (f(x0 + h), f(x0 - h));
        let sym = d.eval(&[x0, x1]).unwrap();
        prop_assume!(fp.is_finite() && fm.is_finite() && sym.is_finite());
        // Skip near-kinks of abs/min/max/div where the stencil straddles a
        // switch: accept if either the match is good or the second
        // difference reveals non-smoothness.
        let num = (fp - fm) / (2.0 * h);
        let f0 = f(x0);
        let curvature = ((fp - 2.0 * f0 + fm) / (h * h)).abs();
        prop_assume!(curvature < 1e4);
        let tol = 1e-3 * (1.0 + num.abs() + sym.abs());
        prop_assert!(
            (num - sym).abs() <= tol,
            "numeric {num} vs symbolic {sym} at ({x0}, {x1}) for {e}"
        );
    }

    /// Hash-consing invariant: rebuilding the same recipe yields the same
    /// node (pointer equality), and evaluation is reproducible.
    #[test]
    fn hash_consing_reproducible(recipe in recipe_strategy()) {
        let a = build(&recipe);
        let b = build(&recipe);
        prop_assert!(a.same(&b));
        prop_assert_eq!(a.id(), b.id());
    }

    /// Solver soundness: when the solver says Unsat on a random band
    /// constraint, dense sampling must find no solution either.
    #[test]
    fn solver_unsat_never_contradicted(
        recipe in recipe_strategy(),
        lo in -0.5f64..0.5,
    ) {
        let e = build(&recipe);
        // Band: lo <= e(x) <= lo + 0.2 on a small box.
        let f = Formula::new(vec![
            Atom::new(e.clone() - constant(lo), Rel::Ge),
            Atom::new(e.clone() - constant(lo + 0.2), Rel::Le),
        ]);
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(4_000));
        if let Outcome::Unsat = solver.solve(&b, &f) {
            for i in 0..25 {
                for j in 0..25 {
                    let x = -1.0 + 2.0 * (i as f64) / 24.0;
                    let y = -1.0 + 2.0 * (j as f64) / 24.0;
                    prop_assert!(
                        !f.holds_at(&[x, y]),
                        "Unsat contradicted at ({x}, {y}) for {e}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Targeted property tests on the physics layer
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symbolic and scalar functional implementations agree across the
    /// domain for every DFA (the LIBXC-vs-encoder cross-validation).
    #[test]
    fn functional_code_paths_agree(
        rs in 1e-4f64..5.0,
        s in 0.0f64..5.0,
        alpha in 0.0f64..5.0,
    ) {
        for dfa in Dfa::all() {
            let sym = dfa.eps_c_expr().eval(&[rs, s, alpha]).unwrap();
            let num = dfa.eps_c(rs, s, alpha);
            let tol = 1e-9 * num.abs().max(1e-9);
            prop_assert!((sym - num).abs() <= tol, "{dfa} at ({rs}, {s}, {alpha})");
        }
    }

    /// The enhancement-factor identity F_c·ε_x^unif = ε_c.
    #[test]
    fn enhancement_identity(rs in 1e-3f64..5.0, s in 0.0f64..5.0) {
        for dfa in [Dfa::Pbe, Dfa::Lyp, Dfa::Am05, Dfa::VwnRpa] {
            let fc = dfa.f_c(rs, s, 0.0);
            let ec = dfa.eps_c(rs, s, 0.0);
            let ex = xcverifier::functionals::lda_x::eps_x_unif(rs);
            prop_assert!((fc * ex - ec).abs() <= 1e-12 * ec.abs().max(1e-12));
        }
    }

    /// PBE and SCAN satisfy EC1 everywhere (by construction); the symbolic
    /// encoding must agree at random points.
    #[test]
    fn nonempirical_ec1_pointwise(
        rs in 1e-4f64..5.0,
        s in 0.0f64..5.0,
        alpha in 0.0f64..5.0,
    ) {
        for dfa in [Dfa::Pbe, Dfa::Scan, Dfa::Am05, Dfa::VwnRpa] {
            let pt = [rs, s, alpha];
            let arity = dfa.arity();
            prop_assert!(
                Condition::EcNonPositivity
                    .holds_at(&dfa, &pt[..arity])
                    .unwrap(),
                "{} at {:?}", dfa, &pt[..arity]
            );
        }
    }
}
