//! Full 35-cell matrix smoke test: every DFA-condition pair is encoded,
//! verified at a tiny budget, and rendered — the complete Table I / Table II
//! pipeline end to end (the repro binary runs the same code at full budget).

use xcverifier::prelude::*;
use xcverifier::report::{run_table1, run_table2};

fn tiny_verifier() -> Verifier {
    Verifier::new(VerifierConfig {
        split_threshold: 2.0,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(1_500)),
        parallel: true,
        parallel_depth: 3,
        max_depth: 2,
        pair_deadline_ms: Some(2_000),
    })
}

#[test]
fn table1_full_matrix_renders_and_is_sound() {
    let t1 = run_table1(&tiny_verifier());
    assert_eq!(t1.cells.len(), 35);
    // 4 inapplicable cells.
    assert_eq!(t1.count(|m| m == TableMark::NotApplicable), 4);
    // Category counts partition the table.
    let total: usize = [
        t1.count(|m| m == TableMark::Verified),
        t1.count(|m| m == TableMark::PartiallyVerified),
        t1.count(|m| m == TableMark::Counterexample),
        t1.count(|m| m == TableMark::Unknown),
        t1.count(|m| m == TableMark::NotApplicable),
    ]
    .iter()
    .sum();
    assert_eq!(total, 35);
    // Soundness at any budget: the by-construction-satisfied pairs must
    // never be refuted.
    for (dfa, cond) in [
        ("PBE", Condition::EcNonPositivity),
        ("SCAN", Condition::EcNonPositivity),
        ("AM05", Condition::EcNonPositivity),
        ("VWN RPA", Condition::EcScaling),
        ("PBE", Condition::LiebOxfordExt),
    ] {
        assert_ne!(
            t1.mark(dfa, cond),
            Some(TableMark::Counterexample),
            "{dfa}/{cond} wrongly refuted"
        );
    }
    // Rendering: 7 condition rows + header + separator + title lines.
    let md = t1.render_markdown();
    assert_eq!(md.matches("Equation").count(), 7);
    for name in ["PBE", "LYP", "AM05", "SCAN", "VWN RPA"] {
        assert!(md.contains(name));
    }
}

#[test]
fn table2_full_matrix_never_inconsistent() {
    // At any budget the two methods must never contradict: that would mean
    // either an unsound Unsat (interval bug) or a grid violation inside a
    // verified region.
    let grid = GridConfig {
        n_rs: 50,
        n_s: 50,
        n_alpha: 3,
        n_zeta: 2,
        tol: 1e-9,
    };
    let t2 = run_table2(&tiny_verifier(), &grid);
    assert_eq!(t2.cells.len(), 35);
    for (dfa, cond, c) in &t2.cells {
        assert_ne!(
            *c,
            Consistency::Inconsistent,
            "{dfa}/{cond} inconsistent between verifier and grid"
        );
        // VerifierOnly is allowed (the grid can under-sample a thin
        // violating band) but only for pairs where a genuine violation
        // exists — never for the by-construction clean EC1 of the
        // non-empirical DFAs.
        if *c == Consistency::VerifierOnly {
            assert_ne!(*cond, Condition::EcNonPositivity, "{dfa}");
        }
    }
    let md = t2.render_markdown();
    assert!(md.contains("Table II"));
}
