//! Acceptance tests for the replayable-certificate subsystem and the
//! checkpoint/shard campaign machinery:
//!
//! * every certificate a campaign emits replays under the independent
//!   checker (`xcv_cert::check`, the library behind `xcvcheck`) and
//!   survives its JSON wire format;
//! * **mutation**: corrupting a cover box, a witness coordinate, or an
//!   Unsat leaf's evidence in a pinned certificate must be rejected —
//!   a certificate that still "checks" after tampering certifies nothing;
//! * **resume**: a campaign killed mid-matrix (mid-pair, even) via
//!   [`CancelToken`] and resumed from its checkpoint produces marks,
//!   aggregate solver statistics, and region multisets identical to an
//!   uninterrupted run;
//! * **shard**: two half-matrix shards merge (in-process and through the
//!   checkpoint files) to exactly the single-process matrix.
//!
//! Everything here runs under node-only solve budgets with
//! `pair_deadline_ms: None`, so every run of the same cell explores the
//! same tree — the bit-identity claims are exact, not statistical.

use xcverifier::prelude::*;

/// Deterministic coarse settings: node budget only, no wall clock anywhere.
fn det_config(nodes: u64, max_depth: u32) -> VerifierConfig {
    VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(nodes)),
        parallel: false,
        parallel_depth: 3,
        max_depth,
        pair_deadline_ms: None,
    }
}

/// A small matrix with both verdict flavors: VWN RPA satisfies EC1 (Unsat
/// traces everywhere), LYP's implementation does not (witness regions).
fn emitting_report() -> CampaignReport {
    Campaign::builder()
        .functionals([Dfa::VwnRpa, Dfa::Lyp])
        .conditions([Condition::EcNonPositivity])
        .config(det_config(20_000, 4))
        .emit_certificates(true)
        .build()
        .unwrap()
        .run()
}

#[test]
fn emitted_certificates_replay_and_survive_the_wire_format() {
    let report = emitting_report();
    assert_eq!(
        report.mark("VWN RPA", Condition::EcNonPositivity),
        Some(TableMark::Verified)
    );
    assert_eq!(
        report.mark("LYP", Condition::EcNonPositivity),
        Some(TableMark::Counterexample)
    );
    for p in &report.pairs {
        let cert = p
            .certificate
            .as_ref()
            .unwrap_or_else(|| panic!("{} should certify", p.functional_name()));
        // Replays in-process...
        let audit = xcverifier::cert::check(cert).expect("fresh certificate replays");
        assert_eq!(audit.regions, cert.regions.len());
        // ...and through the exact JSON the `xcvcheck` binary reads.
        let back = Certificate::parse(&cert.to_json()).expect("wire format round-trips");
        let audit2 = xcverifier::cert::check(&back).expect("parsed certificate replays");
        assert_eq!(audit.replayed_leaves, audit2.replayed_leaves);
        assert_eq!(audit.witnesses, audit2.witnesses);
        match p.mark {
            TableMark::Verified => assert!(audit.replayed_leaves > 0 && audit.witnesses == 0),
            TableMark::Counterexample => assert!(audit.witnesses > 0),
            other => panic!("unexpected mark {other:?}"),
        }
    }

    // The files `write_certificates` persists are the same wire format.
    let dir = std::env::temp_dir().join(format!("xcv_certs_{}", std::process::id()));
    let paths = report.write_certificates(&dir).unwrap();
    assert_eq!(paths.len(), 2);
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap();
        let cert = Certificate::parse(&text).expect("persisted certificate parses");
        xcverifier::cert::check(&cert).expect("persisted certificate replays");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutated_certificates_are_rejected() {
    let report = emitting_report();
    let lyp = report
        .pairs
        .iter()
        .find(|p| p.functional_name() == "LYP")
        .unwrap()
        .certificate
        .as_ref()
        .expect("LYP certifies")
        .clone();
    // The pinned original replays; every mutation below must not. Each
    // mutant is pushed through the JSON round trip first, so the rejection
    // is exactly what `xcvcheck` would do to a tampered file.
    xcverifier::cert::check(&lyp).expect("pinned certificate replays");
    let rejects = |mutant: Certificate, what: &str| {
        let back = Certificate::parse(&mutant.to_json())
            .unwrap_or_else(|e| panic!("{what}: mutant must fail check(), not parse(): {e}"));
        assert!(
            xcverifier::cert::check(&back).is_err(),
            "{what}: tampered certificate still replays"
        );
    };

    // (1) Corrupt a cover box: shrink one region — the cover no longer
    // tiles the domain, so the certificate no longer speaks for all of it.
    let mut m = lyp.clone();
    let b = m.regions[0].bounds[0];
    m.regions[0].bounds[0] = Interval::new(b.lo, b.lo + 0.75 * (b.hi - b.lo));
    rejects(m, "shrunken cover box");

    // (2) Corrupt a witness coordinate: the claimed violation point no
    // longer lies in (or violates anything about) its region.
    let mut m = lyp.clone();
    let ce = m
        .regions
        .iter_mut()
        .find_map(|r| match &mut r.verdict {
            CertVerdict::Counterexample { witness } => Some(witness),
            _ => None,
        })
        .expect("LYP has witness regions");
    ce[1] = 1.0e6;
    rejects(m, "corrupted witness coordinate");

    // (3) Corrupt an Unsat leaf: claim a single-prune proof for a region
    // that genuinely contains a violation — the checker's own contraction
    // of ¬ψ cannot come back empty there.
    let mut m = lyp.clone();
    let fake = m
        .regions
        .iter_mut()
        .find(|r| matches!(r.verdict, CertVerdict::Counterexample { .. }))
        .unwrap();
    fake.verdict = CertVerdict::Verified {
        trace: vec![CertEvent::Pruned],
    };
    rejects(m, "fake Unsat leaf over a violating region");

    // (3b) And the dual: empty out a real Unsat leaf's evidence — a trace
    // that ends with boxes still outstanding proves nothing.
    let mut m = lyp;
    let verified = m
        .regions
        .iter_mut()
        .find(|r| matches!(&r.verdict, CertVerdict::Verified { trace } if !trace.is_empty()))
        .expect("LYP has verified regions");
    verified.verdict = CertVerdict::Verified { trace: Vec::new() };
    rejects(m, "emptied Unsat trace");
}

/// The per-pair facts the resume and shard equivalence claims pin: mark,
/// skip reason, aggregate solver statistics, and the full region multiset.
fn fingerprint(report: &CampaignReport) -> Vec<String> {
    let mut out = Vec::new();
    for p in &report.pairs {
        let stats = p
            .stats
            .map(|s| format!("{}/{}/{}/{}", s.nodes, s.pruned, s.branched, s.max_depth))
            .unwrap_or_default();
        let mut regions: Vec<String> = p
            .map
            .iter()
            .flat_map(|m| &m.regions)
            .map(|r| format!("{:?} {:?}", r.domain, r.status))
            .collect();
        regions.sort();
        out.push(format!(
            "{} {:?} {:?} {:?} [{stats}] {}",
            p.functional_name(),
            p.condition,
            p.mark,
            p.skipped,
            regions.join("; ")
        ));
    }
    out.sort();
    out
}

#[test]
fn checkpoint_resume_reproduces_the_uninterrupted_run() {
    let config = det_config(10_000, 3);
    let build = || {
        Campaign::builder()
            .registry(&Registry::builtin())
            .conditions([Condition::EcNonPositivity])
            .config(config.clone())
    };

    // Reference: one uninterrupted run.
    let reference = build().build().unwrap().run();

    // Interrupted run: cancel the whole campaign the moment the first
    // counterexample streams — guaranteed mid-pair (LYP's EC1 violations
    // surface long before its box tree is exhausted), so the checkpoint
    // records a partially explored cell, not just whole-cell progress.
    let ckpt = std::env::temp_dir().join(format!("xcv_resume_{}.json", std::process::id()));
    std::fs::remove_file(&ckpt).ok();
    let token = CancelToken::new();
    let t = token.clone();
    let interrupted = build()
        .checkpoint(&ckpt)
        .cancel_token(token)
        .on_event(move |e| {
            if matches!(e, CampaignEvent::CounterexampleFound { .. }) {
                t.cancel();
            }
        })
        .build()
        .unwrap()
        .run();
    assert!(
        interrupted
            .pairs
            .iter()
            .any(|p| p.skipped == Some(SkipReason::Cancelled)),
        "the cancel must actually interrupt the matrix"
    );
    assert_ne!(fingerprint(&interrupted), fingerprint(&reference));

    // Resume from the checkpoint: completed cells restore verbatim,
    // interrupted cells re-verify exactly their cancelled leaves — and the
    // whole matrix comes out identical to never having been killed.
    let resumed = build().checkpoint(&ckpt).build().unwrap().run();
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
}

#[test]
fn two_shards_merge_to_the_single_process_matrix() {
    let config = det_config(6_000, 2);
    let build = || {
        Campaign::builder()
            .registry(&Registry::builtin())
            .conditions([Condition::EcNonPositivity])
            .config(config.clone())
    };
    let single = build().build().unwrap().run();

    let dir = std::env::temp_dir();
    let ck = |i: usize| dir.join(format!("xcv_shard{i}_{}.json", std::process::id()));
    std::fs::remove_file(ck(0)).ok();
    std::fs::remove_file(ck(1)).ok();
    let shard0 = build().shard(0, 2).checkpoint(ck(0)).build().unwrap().run();
    let shard1 = build().shard(1, 2).checkpoint(ck(1)).build().unwrap().run();

    // Both shards see the full matrix shape; each ran a strict subset.
    for s in [&shard0, &shard1] {
        assert_eq!(s.pairs.len(), single.pairs.len());
        assert!(s
            .pairs
            .iter()
            .any(|p| p.skipped == Some(SkipReason::OtherShard)));
    }
    // Disjoint and exhaustive: every cell ran in exactly one shard.
    for (a, b) in shard0.pairs.iter().zip(&shard1.pairs) {
        assert_eq!(
            a.skipped == Some(SkipReason::OtherShard),
            b.skipped != Some(SkipReason::OtherShard),
            "{}/{:?} must run in exactly one shard",
            a.functional_name(),
            a.condition
        );
    }

    // In-process merge: bit-identical to the single-process run.
    let merged = CampaignReport::merge([shard0, shard1]).unwrap();
    assert_eq!(fingerprint(&merged), fingerprint(&single));

    // File-level merge (what `xcverify --merge` does): the union of the two
    // shard checkpoints carries the same marks as the single-process run.
    let mut union: Vec<(String, String, String)> = checkpoint_marks(ck(0))
        .unwrap()
        .into_iter()
        .chain(checkpoint_marks(ck(1)).unwrap())
        .map(|(f, c, m)| (f, format!("{c:?}"), format!("{m:?}")))
        .collect();
    union.sort();
    let mut want: Vec<(String, String, String)> = single
        .pairs
        .iter()
        .filter(|p| p.skipped.is_none())
        .map(|p| {
            (
                p.functional_name(),
                format!("{:?}", p.condition),
                format!("{:?}", p.mark),
            )
        })
        .collect();
    want.sort();
    assert_eq!(union, want);
    std::fs::remove_file(ck(0)).ok();
    std::fs::remove_file(ck(1)).ok();
}
