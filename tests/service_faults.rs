//! Deterministic fault-injection suite for the verification service.
//!
//! Every scenario here drives the real daemon through the real TCP wire
//! protocol with faults injected by [`xcv_core::FaultPlan`] — a
//! deterministic, seeded hook with no wall-clock randomness, so each
//! failure fires at exactly the same request arrival on every run. What
//! the suite pins is the service's fault contract:
//!
//! * injected leader panics are isolated — coalesced waiters take the
//!   solve over and finish with marks bit-identical to a fault-free run;
//! * store files corrupted at persist time are quarantined at the next
//!   warm start (never crash, never serve garbage) and the pair recomputes
//!   to the same mark;
//! * truncated campaign checkpoints are quarantined and recomputed, with
//!   identical marks;
//! * a hung client stalls only its own connection — it is reaped by the
//!   read timeout while a healthy concurrent client completes;
//! * connections past the cap get one explicit `busy` error line, and a
//!   freed slot admits the next client;
//! * an expired per-request deadline degrades gracefully: solved pairs
//!   answer, the rest stream as timeouts, the accounting adds up, and the
//!   daemon keeps serving.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use xcv_conditions::Condition;
use xcv_core::{Campaign, FaultPlan, FaultRule, FaultSite, TableMark};
use xcv_functionals::Registry;
use xcv_serve::{Client, Done, Event, Policy, Server, ServerConfig, VerifyRequest};

/// The same small deterministic flat policy the service tests use:
/// node-budgeted, sequential, cheap enough to solve in milliseconds.
fn flat(max_nodes: u64) -> Policy {
    Policy::Flat {
        delta: 1e-3,
        max_nodes,
        split_threshold: 0.625,
        max_depth: 1,
    }
}

type Marks = BTreeMap<(String, String), TableMark>;

/// Run one verify, collecting `(functional, condition-id) -> mark` for
/// every non-skipped pair. `Err` is the server's structured error message.
fn try_verify_marks(client: &mut Client, req: &VerifyRequest) -> Result<(Marks, Done), String> {
    let mut marks = Marks::new();
    let done = client.verify(req, |e| {
        if let Event::Pair {
            functional,
            condition,
            mark,
            skipped: None,
            ..
        } = e
        {
            marks.insert((functional.clone(), condition.id().to_string()), *mark);
        }
    })?;
    Ok((marks, done))
}

/// Fault-free in-process reference marks for one (functional, conditions)
/// cell set — the campaign path the daemon must agree with bit-identically,
/// faults or not.
fn reference_marks(functional: &str, conditions: &[Condition], policy: Policy) -> Marks {
    let handle = Registry::spin_general()
        .get(functional)
        .expect("known functional");
    let report = Campaign::builder()
        .functional(handle)
        .conditions(conditions.iter().copied())
        .config_policy(move |f, _| policy.verifier_config(f))
        .build()
        .expect("at least one pair")
        .run();
    report
        .pairs
        .iter()
        .filter(|p| p.skipped.is_none())
        .map(|p| ((p.functional_name(), p.condition.id().to_string()), p.mark))
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xcv_faults_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// N injected leader panics: the first two requests to reach the solver
/// panic mid-solve. Their clients get a structured error; the coalesced
/// waiters wake (the dropped `LeaderGuard` abandons the claim), re-claim,
/// and one of them finishes the solve — every surviving answer carries the
/// fault-free mark. Completion of all eight threads *is* the no-deadlock
/// assertion (each wait is bounded by `wait_timeout`).
#[test]
fn injected_leader_panics_are_isolated_and_waiters_take_over() {
    let plan = Arc::new(FaultPlan::new(7).arm(FaultSite::SolverPanic, FaultRule::First(2)));
    let server = Server::spawn(ServerConfig {
        wait_timeout: Duration::from_secs(30),
        fault_plan: Some(Arc::clone(&plan)),
        ..ServerConfig::default()
    })
    .expect("ephemeral port");
    let addr = server.addr();
    let policy = flat(400);
    let condition = Condition::EcNonPositivity;
    let req = VerifyRequest {
        functionals: vec!["VWN RPA".to_string()],
        conditions: vec![condition],
        policy,
    };
    let answers: Vec<Result<(Marks, Done), String>> = (0..8)
        .map(|_| {
            let req = req.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                try_verify_marks(&mut client, &req)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    let reference = reference_marks("VWN RPA", &[condition], policy);
    assert_eq!(reference.len(), 1, "one applicable pair");
    let failed = answers.iter().filter(|a| a.is_err()).count();
    assert_eq!(
        failed, 2,
        "exactly the two injected panics fail their own requests: {answers:?}"
    );
    for a in &answers {
        match a {
            Err(e) => assert!(e.contains("panicked"), "structured panic error, got {e:?}"),
            Ok((marks, done)) => {
                assert_eq!(marks, &reference, "survivors get the fault-free marks");
                assert_eq!(done.cached + done.solved, 1);
            }
        }
    }
    assert_eq!(
        plan.fired(FaultSite::SolverPanic),
        2,
        "both injections fired"
    );
    let stats = server.stats();
    assert_eq!(stats.panics, 2, "each isolated panic is counted");
    // The daemon is still fully serviceable after isolating two panics.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("daemon still serving");
    let (marks, done) = try_verify_marks(&mut client, &req).expect("verify after faults");
    assert_eq!(marks, reference);
    assert_eq!(done.cached, 1, "the survivors' solve was memoized");
}

/// A persist-time corruption (the injected fault writes a torn half-file)
/// is caught at the next warm start by the content checksum: the document
/// is quarantined to `*.bad`, counted, and its pair silently recomputes to
/// the identical mark. Nothing crashes and nothing corrupt is ever served.
#[test]
fn corrupted_store_files_are_quarantined_and_recomputed() {
    let dir = temp_dir("store");
    let plan = Arc::new(FaultPlan::new(3).arm(FaultSite::StoreCorrupt, FaultRule::First(1)));
    let req = VerifyRequest {
        functionals: vec!["PBE".to_string(), "LYP".to_string()],
        conditions: Vec::new(), // all seven
        policy: flat(150),
    };
    let (first_marks, first_solved) = {
        let mut server = Server::spawn(ServerConfig {
            store_dir: Some(dir.clone()),
            admit_ms: 0, // persist everything, however cheap
            fault_plan: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        })
        .expect("ephemeral port");
        let mut client = Client::connect(server.addr()).expect("connect");
        let (marks, done) = try_verify_marks(&mut client, &req).expect("verify");
        assert!(done.solved > 1);
        server.shutdown();
        (marks, done.solved)
    };
    assert_eq!(plan.fired(FaultSite::StoreCorrupt), 1, "one torn write");

    // Restart (fault-free) over the same directory: the torn document must
    // be quarantined, every healthy one warm-loaded.
    let mut server = Server::spawn(ServerConfig {
        store_dir: Some(dir.clone()),
        admit_ms: 0,
        ..ServerConfig::default()
    })
    .expect("ephemeral port");
    let stats = server.stats();
    assert_eq!(
        stats.quarantined, 1,
        "the torn file is quarantined, not fatal"
    );
    assert_eq!(stats.warm_loaded, first_solved - 1);
    let bad = std::fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "bad"))
        .count();
    assert_eq!(bad, 1, "quarantine keeps the evidence as *.bad");

    let mut client = Client::connect(server.addr()).expect("connect");
    let (marks, done) = try_verify_marks(&mut client, &req).expect("verify");
    assert_eq!(marks, first_marks, "recomputed pair lands on the same mark");
    assert_eq!(done.solved, 1, "only the quarantined pair re-solves");
    assert_eq!(done.cached, first_solved - 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint truncated mid-write (torn copy, full disk, kill -9) must
/// not wedge the gate: the campaign quarantines it to `*.bad`, recomputes
/// from scratch, and lands on marks identical to the uninterrupted run.
#[test]
fn truncated_checkpoints_are_quarantined_and_recomputed() {
    let dir = temp_dir("ckpt");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("gate.json");
    let policy = flat(150);
    let run = || {
        Campaign::builder()
            .functional(Registry::extended().get("LYP").expect("LYP"))
            .conditions(Condition::all())
            .config_policy(move |f, _| policy.verifier_config(f))
            .checkpoint(ckpt.clone())
            .build()
            .expect("pairs")
            .run()
    };
    let baseline: Marks = run()
        .pairs
        .iter()
        .filter(|p| p.skipped.is_none())
        .map(|p| ((p.functional_name(), p.condition.id().to_string()), p.mark))
        .collect();
    assert!(!baseline.is_empty());

    // Tear the checkpoint in half — no longer parseable JSON.
    let text = std::fs::read_to_string(&ckpt).expect("checkpoint written");
    std::fs::write(&ckpt, &text[..text.len() / 2]).expect("truncate");

    let rerun: Marks = run()
        .pairs
        .iter()
        .filter(|p| p.skipped.is_none())
        .map(|p| ((p.functional_name(), p.condition.id().to_string()), p.mark))
        .collect();
    assert_eq!(rerun, baseline, "full recompute, identical marks");
    assert!(
        dir.join("gate.json.bad").exists(),
        "the torn checkpoint is kept for postmortem"
    );
    let healthy = std::fs::read_to_string(&ckpt).expect("fresh checkpoint");
    assert!(healthy.len() > text.len() / 2, "checkpoint rewritten whole");
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that sends half a request line and then wedges holds only its
/// own connection: a healthy concurrent client solves and completes, and
/// the read timeout reaps the wedged socket.
#[test]
fn hung_clients_are_reaped_without_blocking_others() {
    let mut server = Server::spawn(ServerConfig {
        read_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    })
    .expect("ephemeral port");
    let addr = server.addr();

    // The wedge: half a request, no newline, then silence.
    let mut hung = TcpStream::connect(addr).expect("connect");
    hung.write_all(b"{\"cmd\": \"veri").expect("partial write");

    // A healthy client is fully served while the wedged one idles.
    let mut client = Client::connect(addr).expect("connect");
    let req = VerifyRequest {
        functionals: vec!["VWN RPA".to_string()],
        conditions: vec![Condition::EcNonPositivity],
        policy: flat(400),
    };
    let (marks, done) = try_verify_marks(&mut client, &req).expect("healthy client verifies");
    assert_eq!(marks.len(), 1);
    assert_eq!(done.cached + done.solved, 1);

    // The reap: within the read timeout the daemon closes the wedged
    // connection — the next read sees EOF (or a reset), never a hang.
    hung.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");
    let mut buf = [0u8; 64];
    match hung.read(&mut buf) {
        Ok(0) => {} // clean EOF: reaped
        Err(e) => assert!(
            !matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "connection was never reaped: {e}"
        ),
        Ok(n) => panic!("unexpected bytes from a reaped connection: {n}"),
    }
    server.shutdown();
}

/// Past the connection cap, the daemon answers one explicit `busy` error
/// line and drops — and once the occupying client leaves, the freed slot
/// admits the next one.
#[test]
fn connection_cap_rejects_with_an_explicit_busy_line() {
    let mut server = Server::spawn(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    })
    .expect("ephemeral port");
    let addr = server.addr();

    let mut occupier = Client::connect(addr).expect("connect");
    occupier.ping().expect("slot holder is live");

    // The accept loop admits connections asynchronously, so poll until the
    // over-cap connection has observably been rejected.
    let mut rejected = false;
    for _ in 0..100 {
        let stream = TcpStream::connect(addr).expect("tcp connect always succeeds");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut line = String::new();
        match BufReader::new(stream).read_line(&mut line) {
            Ok(n) if n > 0 => {
                assert!(
                    line.contains("busy"),
                    "explicit busy diagnostic, got {line:?}"
                );
                rejected = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)), // raced the slot
        }
    }
    assert!(rejected, "over-cap connection never saw the busy line");

    // Freeing the slot re-admits: a fresh client gets served.
    drop(occupier);
    let mut admitted = false;
    for _ in 0..100 {
        if let Ok(mut c) = Client::connect(addr) {
            if c.ping().is_ok() {
                admitted = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(admitted, "freed slot was never re-admitted");
    server.shutdown();
}

/// An expired per-request wall deadline degrades gracefully: whatever is
/// already answered streams normally, every remaining pair is reported as
/// `skipped: "timeout"`, the `done` accounting adds up exactly, and the
/// connection survives for the next request.
#[test]
fn request_deadline_degrades_gracefully() {
    let mut server = Server::spawn(ServerConfig {
        request_deadline_ms: Some(0), // already expired: everything times out
        ..ServerConfig::default()
    })
    .expect("ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");
    let req = VerifyRequest {
        functionals: vec!["LYP".to_string()],
        conditions: Vec::new(), // all seven
        policy: flat(150),
    };
    let mut answered = 0u64;
    let mut na = 0u64;
    let mut timed_out = 0u64;
    let done = client
        .verify(&req, |e| {
            if let Event::Pair { skipped, .. } = e {
                match skipped.as_deref() {
                    None => answered += 1,
                    Some("na") => na += 1,
                    Some("timeout") | Some("budget") => timed_out += 1,
                    Some(other) => panic!("unexpected skip tag {other:?}"),
                }
            }
        })
        .expect("a timed-out request still completes structurally");
    assert!(done.timeouts > 0, "the deadline fired");
    assert_eq!(done.timeouts, timed_out, "summary matches the event stream");
    assert_eq!(done.solved + done.cached, answered);
    assert_eq!(
        answered + na + timed_out,
        done.pairs,
        "every pair is accounted for: answered, inapplicable, or timed out"
    );
    client
        .ping()
        .expect("connection survives a timed-out request");
    server.shutdown();
}
