//! Spin-resolved (ζ ≠ 0) functionals as first-class registry citizens,
//! verified through the `Campaign` engine: the ζ-general matrix flows
//! through `applicable_pairs_in`, the encoder, the compiled-tape solver and
//! the campaign scheduler exactly like the paper's ζ = 0 workload, and the
//! marks agree with the direct solver runs of `tests/spin_conditions.rs`.
//!
//! The compile-once counter assertions live here too, so (as in
//! `tests/compile_once.rs`) they run in their own test binary; every test
//! takes the window mutex because each of them compiles formulas.

use std::sync::Mutex;
use xcverifier::prelude::*;

/// Serialize the tests: they share the process-wide compile counter.
static COUNTER_WINDOW: Mutex<()> = Mutex::new(());

fn quick_config(nodes: u64) -> VerifierConfig {
    VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(nodes)),
        parallel: false,
        parallel_depth: 0,
        max_depth: 2,
        pair_deadline_ms: None,
    }
}

/// The spin subset every test below runs: first-derivative conditions and
/// the Lieb–Oxford pair (EC3's second derivative of the ζ-general PBE DAG
/// is exercised by `encode_all_spin` in the encoder suite; keeping it out of
/// the repeated campaign runs keeps tier-1 fast).
fn spin_conditions() -> [Condition; 4] {
    [
        Condition::EcNonPositivity,
        Condition::EcScaling,
        Condition::LiebOxford,
        Condition::LiebOxfordExt,
    ]
}

#[test]
fn spin_registry_shape() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let r = Registry::spin();
    assert_eq!(
        r.names(),
        vec!["PBE(ζ)", "PW92(ζ)", "LSDA-X(ζ)", "B88(ζ)", "PBE-X(ζ)"]
    );
    // 5 correlation conditions × 2 correlation citizens + 2 LO conditions
    // for each of the 3 exchange citizens.
    assert_eq!(applicable_pairs_in(&r).len(), 16);
    for f in r.iter() {
        assert_eq!(f.arity(), 4, "{}", f.name());
        let space = f.var_space();
        assert!(space.is_spin_resolved(), "{}", f.name());
        let d = pb_domain(f.as_ref());
        assert_eq!(d.ndim(), 4);
        // Whatever the middle axes are (s, α or s↑, s↓), ζ is axis 3.
        assert_eq!(space.find(AxisKind::Zeta).unwrap().index, 3);
        assert_eq!(d.dim(3).lo, -1.0);
        assert_eq!(d.dim(3).hi, 1.0);
    }
    // The per-spin exchange citizens present s↑/s↓ where the scalar-factor
    // ones present s/α.
    let b88 = r.get("B88(ζ)").unwrap();
    assert_eq!(b88.var_space().names(), vec!["rs", "s_up", "s_dn", "zeta"]);
    assert!(r
        .get("PBE(ζ)")
        .unwrap()
        .var_space()
        .contains(AxisKind::Alpha));
    // The spin-general workload registry: 8 module entries + 5 ζ citizens.
    assert_eq!(Registry::spin_general().len(), 13);
}

#[test]
fn zeta_zero_restriction_matches_base_functionals() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    use xcverifier::functionals::{pbe, pw92};
    let spbe = SpinResolved::pbe();
    let spw = SpinResolved::pw92();
    let sb88 = SpinScaledX::b88();
    let spbex = SpinScaledX::pbe_x();
    for &(rs, s) in &[(0.5, 0.5), (1.0, 1.0), (3.0, 2.0)] {
        assert!((spbe.eps_c(rs, s, 0.0) - pbe::eps_c(rs, s)).abs() < 1e-13);
        assert!((spw.eps_c(rs, s, 0.0) - pw92::eps_c(rs)).abs() < 1e-15);
        // Per-spin exchange at ζ = 0, s↑ = s↓ = s is the base 3-arg F_x.
        use xcverifier::functionals::b88;
        assert_eq!(sb88.f_x(s, 0.0), Some(b88::f_x(s)));
        assert_eq!(spbex.f_x(s, 0.0), Some(pbe::f_x(s)));
        assert!((sb88.f_x_at(&[rs, s, s, 0.0]).unwrap() - b88::f_x(s)).abs() < 1e-15);
    }
    // The full spin surface is reachable through the point interface, and
    // agrees with the symbolic DAG the encoder verifies (the spin analogue
    // of the registry-wide agreement test).
    for f in Registry::spin().iter() {
        let eps = f.eps_c_expr();
        let fx = f.f_x_expr();
        for &rs in &[0.3, 1.0, 4.0] {
            for &s in &[0.0, 1.5, 4.0] {
                for &z in &[-0.9, -0.3, 0.0, 0.6, 1.0] {
                    let p = [rs, s, 0.0, z];
                    let sym = eps.eval(&p).unwrap();
                    let num = f.eps_c_at(&p);
                    assert!(
                        (sym - num).abs() <= 1e-10 * num.abs().max(1e-10),
                        "{}: ε_c DAG {sym} vs scalar {num} at {p:?}",
                        f.name()
                    );
                    if let (Some(e), Some(v)) = (&fx, f.f_x_at(&p)) {
                        let sym = e.eval(&p).unwrap();
                        assert!(
                            (sym - v).abs() <= 1e-12 * v.abs().max(1e-12),
                            "{}: F_x DAG {sym} vs scalar {v} at {p:?}",
                            f.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn spin_campaign_marks_match_direct_verifier() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let report = Campaign::builder()
        .registry(&Registry::spin())
        .conditions(spin_conditions())
        .config(quick_config(800))
        .build()
        .unwrap()
        .run();
    assert_eq!(report.pairs.len(), 20);
    // Every cell that ran must reproduce the direct (pre-campaign) solver
    // path bit for bit: same encoding, same config, same mark.
    let mut compared = 0;
    for p in &report.pairs {
        if p.skipped.is_some() {
            assert_eq!(p.skipped, Some(SkipReason::NotApplicable));
            continue;
        }
        let problem = Encoder::encode(&p.functional, p.condition).unwrap();
        let direct = Verifier::new(quick_config(800)).verify(&problem);
        assert_eq!(
            p.mark,
            direct.table_mark(),
            "{} / {}",
            p.functional_name(),
            p.condition
        );
        compared += 1;
    }
    // EC1 + EC2 for each correlation citizen, LO + LO-ext for each of the
    // three exchange citizens (per-spin s↑/s↓ cells included).
    assert_eq!(compared, 10);
}

#[test]
fn spin_campaign_agrees_with_standalone_spin_tests() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let report = Campaign::builder()
        .registry(&Registry::spin())
        .conditions(spin_conditions())
        .config(quick_config(2_000))
        .build()
        .unwrap()
        .run();
    // tests/spin_conditions.rs: the LSDA exchange scaling factor is >= 1 and
    // <= 2^{1/3} — far below the Lieb–Oxford constant, so both LO cells are
    // proven outright.
    assert_eq!(
        report.mark("LSDA-X(ζ)", Condition::LiebOxford),
        Some(TableMark::Verified)
    );
    assert_eq!(
        report.mark("LSDA-X(ζ)", Condition::LiebOxfordExt),
        Some(TableMark::Verified)
    );
    // tests/spin_conditions.rs: spin-general EC1/EC2 admit no *valid*
    // counterexample for the PW92 and PBE correlations.
    for name in ["PW92(ζ)", "PBE(ζ)"] {
        for cond in [Condition::EcNonPositivity, Condition::EcScaling] {
            let mark = report.mark(name, cond).unwrap();
            assert_ne!(mark, TableMark::Counterexample, "{name} / {cond:?}");
            assert_ne!(mark, TableMark::NotApplicable, "{name} / {cond:?}");
        }
    }
    // The spin-scaled PBE exchange stays below C_LO at every polarization
    // (max 2^{1/3}·F_x(5) ≈ 2.14): no valid counterexample can exist.
    for cond in [Condition::LiebOxford, Condition::LiebOxfordExt] {
        let mark = report.mark("PBE-X(ζ)", cond).unwrap();
        assert_ne!(mark, TableMark::Counterexample, "PBE-X(ζ) / {cond:?}");
        assert_ne!(mark, TableMark::NotApplicable, "PBE-X(ζ) / {cond:?}");
    }
    // B88(ζ) genuinely violates: whatever the budget decides here, its LO
    // cells ran (the targeted solver test below pins the violation itself).
    assert_ne!(
        report.mark("B88(ζ)", Condition::LiebOxfordExt),
        Some(TableMark::NotApplicable)
    );
    // And any witness the campaign ever reports must exactly violate ψ.
    let registry = Registry::spin();
    for (name, cond, w) in report.counterexamples() {
        let f = registry.get(&name).unwrap();
        assert!(
            !cond.holds_at(f.as_ref(), &w).unwrap(),
            "{name} / {cond:?}: spurious witness {w:?}"
        );
    }
}

#[test]
fn spin_campaign_compiles_once_per_cell() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let before = xcverifier::solver::compile_count();
    let report = Campaign::builder()
        .registry(&Registry::spin())
        .conditions([Condition::EcNonPositivity, Condition::LiebOxfordExt])
        .config(quick_config(300))
        .build()
        .unwrap()
        .run();
    let compiles = xcverifier::solver::compile_count() - before;
    let cells = report.encoded_pairs() as u64;
    // EC1 for the two correlation citizens, LO-ext for the three exchange
    // citizens.
    assert_eq!(cells, 5);
    // ψ shares the ¬ψ tape (PR 3), so each encoded cell lowers once; allow
    // the lazily-built mean-value program on top, nothing per box.
    assert!(
        compiles <= 2 * cells,
        "{compiles} compilations for {cells} spin cells"
    );
    let solved: u64 = report
        .pairs
        .iter()
        .filter_map(|p| p.map.as_ref())
        .map(|m| m.regions.len() as u64)
        .sum();
    assert!(
        solved >= cells,
        "every encoded cell solved at least one box"
    );
}

#[test]
fn spin_scheduling_costs_rank_above_scalar_lda() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    // The cost model drives costliest-first scheduling: a 4-D spin pair must
    // outrank the 1-D LDA pair of the same condition, and SCAN/EC3 stays the
    // heaviest cell of the spin-general matrix.
    let spin_pbe = SpinResolved::pbe();
    let lda = Dfa::VwnRpa;
    assert!(
        pair_cost(&spin_pbe, Condition::EcNonPositivity)
            > pair_cost(&lda, Condition::EcNonPositivity)
    );
    let scan = Dfa::Scan;
    let max_cost = Registry::spin_general()
        .iter()
        .flat_map(|f| {
            Condition::all()
                .into_iter()
                .map(move |c| pair_cost(f.as_ref(), c))
        })
        .max()
        .unwrap();
    assert_eq!(max_cost, pair_cost(&scan, Condition::UcMonotonicity));
    // The report records the modeled cost on every outcome.
    let report = Campaign::builder()
        .functionals([Dfa::VwnRpa])
        .conditions([Condition::EcNonPositivity])
        .config(quick_config(200))
        .build()
        .unwrap()
        .run();
    assert_eq!(
        report.pairs[0].cost,
        pair_cost(&lda, Condition::EcNonPositivity)
    );
}
