//! The flat-compile-counter contract of a warm service pass, in isolation.
//!
//! [`xcv_solver::compile_count`] is process-global, so this assertion gets
//! its own test binary: with the daemon in-process and nothing else
//! running, any tape compiled between the cold and warm passes is the
//! daemon's doing — and a warm pass must compile exactly nothing. This is
//! the observable proof that level 1 (the compiled-problem cache) and
//! level 2 (the result store) actually short-circuit the encode pipeline,
//! not just the solver.

use xcv_functionals::Registry;
use xcv_serve::{Client, Policy, Server, ServerConfig, VerifyRequest};

#[test]
fn warm_service_pass_compiles_nothing() {
    let mut server = Server::spawn(ServerConfig::default()).expect("ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");
    let req = VerifyRequest {
        functionals: Registry::extended()
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect(),
        conditions: Vec::new(),
        policy: Policy::Flat {
            delta: 1e-3,
            max_nodes: 150,
            split_threshold: 0.625,
            max_depth: 1,
        },
    };
    let cold = client.verify(&req, |_| {}).expect("cold pass");
    assert_eq!(
        cold.solved, 40,
        "40 distinct problems in the 45-pair matrix"
    );
    let compiles_cold = xcv_solver::compile_count();
    assert_eq!(
        cold.compile_count, compiles_cold,
        "the daemon is in-process: its counter is ours"
    );

    let warm = client.verify(&req, |_| {}).expect("warm pass");
    assert_eq!(warm.cached, 45);
    assert_eq!(warm.solved, 0);
    assert_eq!(
        warm.compile_count, compiles_cold,
        "flat compile_count across the warm pass"
    );
    assert_eq!(xcv_solver::compile_count(), compiles_cold);
    server.shutdown();
}
