//! Equivalence suite for the batched frontier engine (PR 5): batched
//! execution is *pure perf* — lane-for-lane bit-identical tape passes and
//! an engine that visits the same boxes in the same order as the scalar
//! DFS, at any batch width.
//!
//! Three layers:
//!
//! * proptest (local shim): `IntervalTape::forward_batch` over random
//!   tapes, random lanes, full and dirty-masked — every slot of every lane
//!   must equal the scalar `forward` image bit for bit (`forward_from`
//!   included, via the masked lanes);
//! * proptest: `solve_compiled` at several batch widths on random formulas
//!   and boxes — identical `Outcome`s (models included; the search is
//!   deterministic) *and* identical `SolveStats`;
//! * the pinned matrices: every problem of `encode_all_extended()` (45
//!   pairs) and `encode_all_spin()` (66 pairs) verified by the production
//!   `Verifier` with scalar and with batched solvers — identical
//!   `TableMark`s and identical aggregate solver statistics.

use proptest::prelude::*;
use xcverifier::expr::IntervalTape;
use xcverifier::prelude::*;
use xcverifier::solver::{CompiledFormula, SolveScratch, SolveStats};

// ---------------------------------------------------------------------------
// Random expressions (compact variant of tests/solver_equivalence.rs)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Recipe {
    Var(u8),
    Const(f64),
    Add(Box<Recipe>, Box<Recipe>),
    Mul(Box<Recipe>, Box<Recipe>),
    Div(Box<Recipe>, Box<Recipe>),
    Neg(Box<Recipe>),
    PowI(Box<Recipe>, i32),
    Exp(Box<Recipe>),
    LnShift(Box<Recipe>),
    Sqrt(Box<Recipe>),
    Tanh(Box<Recipe>),
    Abs(Box<Recipe>),
    Min(Box<Recipe>, Box<Recipe>),
    Max(Box<Recipe>, Box<Recipe>),
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Recipe::Var),
        (-3.0f64..3.0).prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Div(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Recipe::Neg(Box::new(a))),
            (inner.clone(), 1i32..4).prop_map(|(a, n)| Recipe::PowI(Box::new(a), n)),
            inner.clone().prop_map(|a| Recipe::Exp(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::LnShift(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Sqrt(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Tanh(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Abs(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Recipe::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(r: &Recipe) -> Expr {
    match r {
        Recipe::Var(v) => var(*v as u32),
        Recipe::Const(c) => constant(*c),
        Recipe::Add(a, b) => build(a) + build(b),
        Recipe::Mul(a, b) => build(a) * build(b),
        Recipe::Div(a, b) => build(a) / build(b),
        Recipe::Neg(a) => -build(a),
        Recipe::PowI(a, n) => build(a).powi(*n),
        Recipe::Exp(a) => (build(a) * 0.25).exp(),
        Recipe::LnShift(a) => (build(a).powi(2) + 1.0).ln(),
        Recipe::Sqrt(a) => (build(a).powi(2) + 0.5).sqrt(),
        Recipe::Tanh(a) => build(a).tanh(),
        Recipe::Abs(a) => build(a).abs(),
        Recipe::Min(a, b) => build(a).min(&build(b)),
        Recipe::Max(a, b) => build(a).max(&build(b)),
    }
}

fn stats_key(s: &SolveStats) -> (u64, u64, u64, u32) {
    (s.nodes, s.pruned, s.branched, s.max_depth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `forward_batch` == scalar `forward`, lane by lane and bit by bit:
    /// lane 0 runs full, every further lane is a child of lane 0's box
    /// re-bisected along one axis and seeded with lane 0's column
    /// (exercising the dependency-bitset dirty path `forward_from` builds
    /// on).
    #[test]
    fn forward_batch_lanes_match_scalar_forward(
        recipe in recipe_strategy(),
        lo0 in -1.0f64..0.0, w0 in 0.1f64..2.0,
        lo1 in -1.0f64..0.0, w1 in 0.1f64..2.0,
        lo2 in -1.0f64..0.0, w2 in 0.1f64..2.0,
        cuts in (0u8..3, 0u8..3, 0u8..3),
    ) {
        let e = build(&recipe);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let parent = vec![
            interval(lo0, lo0 + w0),
            interval(lo1, lo1 + w1),
            interval(lo2, lo2 + w2),
        ];
        // Children: parent re-bisected along cuts.0/.1/.2 (dirty lanes).
        let child = |axis: u8, upper: bool| {
            let mut b = parent.clone();
            let d = b[axis as usize];
            let (l, r) = d.bisect();
            b[axis as usize] = if upper { r } else { l };
            b
        };
        let boxes = [
            parent.clone(),
            child(cuts.0, false),
            child(cuts.1, true),
            child(cuts.2, false),
        ];
        let width = boxes.len();
        let mut soa = tape.scratch_batch(width);
        // Seed the dirty lanes with the parent's forward image.
        let mut parent_vals = tape.scratch();
        tape.forward(&parent, &mut parent_vals);
        for j in 1..width {
            for i in 0..tape.len() {
                soa[i * width + j] = parent_vals[i];
            }
        }
        let domains: Vec<&[Interval]> = boxes.iter().map(|b| b.as_slice()).collect();
        let dirty = vec![
            u64::MAX,
            1u64 << cuts.0,
            1u64 << cuts.1,
            1u64 << cuts.2,
        ];
        tape.forward_batch(width, &domains, &dirty, &mut soa);
        let mut scalar = tape.scratch();
        for (j, b) in boxes.iter().enumerate() {
            tape.forward(b, &mut scalar);
            for i in 0..tape.len() {
                prop_assert_eq!(soa[i * width + j], scalar[i], "slot {}, lane {}", i, j);
            }
        }
    }

    /// Batched solving at any width == the scalar DFS: same outcome, same
    /// model, same statistics — across reused scratch.
    #[test]
    fn batched_solve_matches_scalar_any_width(
        recipe in recipe_strategy(),
        lo in -0.5f64..0.5,
        band in 0.05f64..0.5,
        budget in 1u8..4,
    ) {
        let e = build(&recipe);
        let f = Formula::new(vec![
            Atom::new(e.clone() - constant(lo), Rel::Ge),
            Atom::new(e - constant(lo + band), Rel::Le),
        ]);
        let compiled = CompiledFormula::compile(&f);
        let nodes = [30u64, 800, 20_000][(budget % 3) as usize];
        let scalar = DeltaSolver::new(1e-3, SolveBudget::nodes(nodes));
        let mut scratch = SolveScratch::new();
        let boxes = [
            BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0), (-1.0, 1.0)]),
            BoxDomain::from_bounds(&[(0.0, 0.5), (-1.0, 0.0), (0.2, 0.9)]),
        ];
        for b in &boxes {
            let (want, want_stats) = scalar.solve_compiled_with_stats(b, &compiled, &mut scratch);
            for w in [2usize, 5, 16] {
                let batched = scalar.clone().with_batch_width(w);
                let (got, got_stats) =
                    batched.solve_compiled_with_stats(b, &compiled, &mut scratch);
                prop_assert_eq!(&want, &got, "width {} diverged on {} over {}", w, f, b);
                prop_assert_eq!(
                    stats_key(&want_stats),
                    stats_key(&got_stats),
                    "width {} stats diverged on {} over {}",
                    w,
                    f,
                    b
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned matrices: extended (45) and spin (66), production verifier
// ---------------------------------------------------------------------------

fn quick_config(width: usize) -> VerifierConfig {
    VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(250)).with_batch_width(width),
        parallel: false,
        parallel_depth: 0,
        max_depth: 1,
        pair_deadline_ms: None,
    }
}

fn assert_matrix_agrees(problems: &[EncodedProblem], widths: &[usize]) {
    for p in problems {
        let (scalar_map, scalar_stats) = Verifier::new(quick_config(1)).verify_with_stats(p);
        for &w in widths {
            let (map, stats) = Verifier::new(quick_config(w)).verify_with_stats(p);
            assert_eq!(
                scalar_map.table_mark(),
                map.table_mark(),
                "width {w} changed the mark on {} / {}",
                p.functional_name(),
                p.condition.name()
            );
            assert_eq!(
                stats_key(&scalar_stats),
                stats_key(&stats),
                "width {w} changed the search on {} / {}",
                p.functional_name(),
                p.condition.name()
            );
        }
    }
}

#[test]
fn pinned_extended_matrix_batched_marks_agree() {
    let problems = Encoder::encode_all_extended();
    assert_eq!(problems.len(), 45);
    assert_matrix_agrees(&problems, &[3, 8]);
}

#[test]
fn pinned_spin_matrix_batched_marks_agree() {
    // The ζ-resolved matrix: 4-D cells exercise the support-aware split
    // (ζ-free atoms never split ζ) and the widest dirty-cone geometry.
    let problems = Encoder::encode_all_spin();
    assert_eq!(problems.len(), 66);
    assert_matrix_agrees(&problems, &[8]);
}
