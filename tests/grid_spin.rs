//! The ζ-aware grid baseline on spin-resolved citizens, end to end: the PB
//! checker meshes 4-D variable spaces (including the per-spin
//! `(rs, s↑, s↓, ζ)` exchange space), its per-axis violation boxes line up
//! with the solver's witnesses, and the Table II consistency classifier
//! compares the two methods on full-dimensional probe points.

use xcverifier::prelude::*;
use xcverifier::report::classify;

fn grid_cfg() -> GridConfig {
    GridConfig {
        n_rs: 40,
        n_s: 9,
        n_alpha: 9,
        n_zeta: 9,
        tol: 1e-9,
    }
}

fn verifier(nodes: u64) -> Verifier {
    Verifier::new(VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(nodes)),
        parallel: false,
        parallel_depth: 0,
        max_depth: 2,
        pair_deadline_ms: None,
    })
}

#[test]
fn b88_spin_grid_finds_the_violation_with_4d_bbox() {
    let f = std::sync::Arc::new(SpinScaledX::b88());
    let grid = pb_check(f, Condition::LiebOxfordExt, &grid_cfg()).unwrap();
    assert_eq!(grid.ndim(), 4);
    assert_eq!(grid.space.names(), vec!["rs", "s_up", "s_dn", "zeta"]);
    assert!(!grid.satisfied(), "B88(ζ) violates EC5 on the mesh");
    let bb = grid.violation_bbox().unwrap();
    assert_eq!(bb.len(), 4, "per-axis bounds for every axis of the space");
    // The violation needs a large gradient on a weighted channel and spans
    // the polarized edges.
    assert!(bb[1].1 >= 4.9 || bb[2].1 >= 4.9, "{bb:?}");
    assert!(bb[3].1 >= 0.99, "{bb:?}");
    // Every violating mesh point must exactly violate ψ per the symbolic
    // encoding — grid and encoder agree on what the condition *is*.
    let p = Encoder::encode(grid.functional.clone(), Condition::LiebOxfordExt).unwrap();
    let mut checked = 0;
    for i in 0..grid.n_rs() {
        for j in 0..grid.n_s() {
            if !grid.pass_at(i, j) {
                for point in grid.cell_points(i, j) {
                    if !grid.pass_at_index(&[
                        i,
                        j,
                        grid.axis_samples(2)
                            .iter()
                            .position(|&x| x == point[2])
                            .unwrap(),
                        grid.axis_samples(3)
                            .iter()
                            .position(|&x| x == point[3])
                            .unwrap(),
                    ]) {
                        assert!(
                            !p.psi().holds_at(&point),
                            "grid flagged a point ψ accepts: {point:?}"
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 0);
}

#[test]
fn spin_grid_agrees_with_verifier_marks() {
    // Table II on 4-D cells: grid and verifier must never contradict.
    let cases: [(FunctionalHandle, Condition); 3] = [
        (
            std::sync::Arc::new(SpinScaledX::pbe_x()),
            Condition::LiebOxfordExt,
        ),
        (
            std::sync::Arc::new(SpinResolved::lsda_x()),
            Condition::LiebOxford,
        ),
        (
            std::sync::Arc::new(SpinScaledX::b88()),
            Condition::LiebOxfordExt,
        ),
    ];
    for (f, cond) in cases {
        let name = f.name();
        let grid = pb_check(f.clone(), cond, &grid_cfg()).unwrap();
        let problem = Encoder::encode(f, cond).unwrap();
        let map = verifier(2_000).verify(&problem);
        let c = classify(&map, &grid);
        assert_ne!(
            c,
            xcverifier::report::Consistency::Inconsistent,
            "{name}/{cond}: 4-D grid and verifier contradict"
        );
    }
}

#[test]
fn scalar_factor_spin_grid_meshes_zeta() {
    // PW92(ζ): ε_c < 0 at every polarization — EC1 passes across the whole
    // 4-D mesh, which includes the ζ = ±1 edges the old 2-D slicing never
    // sampled.
    let f = std::sync::Arc::new(SpinResolved::pw92());
    let grid = pb_check(f, Condition::EcNonPositivity, &grid_cfg()).unwrap();
    assert_eq!(grid.ndim(), 4);
    assert_eq!(grid.axis_samples(3).first(), Some(&-1.0));
    assert_eq!(grid.axis_samples(3).last(), Some(&1.0));
    assert!(grid.satisfied());
}
