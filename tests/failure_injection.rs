//! Failure-injection and degenerate-input tests: the toolchain must stay
//! sound and panic-free when budgets are zero, domains are empty or
//! zero-width, variables are unbound, and expressions leave their natural
//! domain.

use xcverifier::prelude::*;

#[test]
fn solver_zero_node_budget_times_out() {
    let f = Formula::single(Atom::new(var(0), Rel::Ge));
    let b = BoxDomain::from_bounds(&[(-1.0, 1.0)]);
    let s = DeltaSolver::new(1e-3, SolveBudget::nodes(0));
    assert_eq!(s.solve(&b, &f), Outcome::Timeout);
}

#[test]
fn solver_zero_time_budget_times_out_or_decides_instantly() {
    let f = Formula::single(Atom::new(var(0).exp() + 1.0, Rel::Le)); // unsat
    let b = BoxDomain::from_bounds(&[(-50.0, 50.0)]);
    let s = DeltaSolver::new(1e-3, SolveBudget::millis(0));
    // The first box may be decided before the first time check; either
    // answer is acceptable, but never a (false) DeltaSat.
    match s.solve(&b, &f) {
        Outcome::DeltaSat(m) => panic!("impossible model {m:?}"),
        Outcome::Unsat | Outcome::Timeout => {}
    }
}

#[test]
fn empty_domain_short_circuits() {
    let f = Formula::single(Atom::new(var(0), Rel::Ge));
    let b = BoxDomain::new(vec![Interval::EMPTY]);
    assert_eq!(DeltaSolver::default().solve(&b, &f), Outcome::Unsat);
}

#[test]
fn zero_width_domain_is_a_point_check() {
    let f = Formula::single(Atom::new(var(0) - 1.0, Rel::Ge));
    let hit = BoxDomain::from_bounds(&[(1.0, 1.0)]);
    let miss = BoxDomain::from_bounds(&[(0.0, 0.0)]);
    let s = DeltaSolver::default();
    assert!(matches!(s.solve(&hit, &f), Outcome::DeltaSat(_)));
    assert_eq!(s.solve(&miss, &f), Outcome::Unsat);
}

#[test]
fn unbound_variable_in_formula_is_handled() {
    // Formula mentions x1 but the domain only has one dimension: the missing
    // variable reads as ENTIRE in intervals and NaN pointwise, so the solver
    // may time out or return an (invalid) model — but must not panic or
    // wrongly prove Unsat of a satisfiable-on-extension formula... the only
    // hard requirement is no panic and no exact model claim.
    let f = Formula::single(Atom::new(var(1) - 1.0, Rel::Ge));
    let b = BoxDomain::from_bounds(&[(0.0, 1.0)]);
    let s = DeltaSolver::new(1e-3, SolveBudget::nodes(100));
    match s.solve(&b, &f) {
        Outcome::DeltaSat(m) => {
            // Pointwise evaluation of x1 fails -> cannot be an exact model.
            assert!(!f.holds_at(&m));
        }
        Outcome::Unsat | Outcome::Timeout => {}
    }
}

#[test]
fn natural_domain_violations_prune_soundly() {
    // ln(x) >= 0 on a negative-only box: no real point is in ln's domain, so
    // Unsat is the correct answer (dReal's natural-domain semantics).
    let f = Formula::single(Atom::new(var(0).ln(), Rel::Ge));
    let b = BoxDomain::from_bounds(&[(-2.0, -1.0)]);
    assert_eq!(DeltaSolver::default().solve(&b, &f), Outcome::Unsat);
}

#[test]
fn sqrt_of_negative_region_discarded() {
    // sqrt(x) >= 0 holds wherever defined; on the negative half-line there
    // is no witness at all.
    let f = Formula::single(Atom::new(var(0).sqrt(), Rel::Ge));
    let neg = BoxDomain::from_bounds(&[(-5.0, -1.0)]);
    assert_eq!(DeltaSolver::default().solve(&neg, &f), Outcome::Unsat);
    let pos = BoxDomain::from_bounds(&[(1.0, 4.0)]);
    assert!(matches!(
        DeltaSolver::default().solve(&pos, &f),
        Outcome::DeltaSat(_)
    ));
}

#[test]
fn verifier_with_tiny_deadline_still_partitions() {
    let p = Encoder::encode(Dfa::Pbe, Condition::EcScaling).unwrap();
    let v = Verifier::new(VerifierConfig {
        split_threshold: 0.3,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(500)),
        parallel: true,
        parallel_depth: 3,
        max_depth: 6,
        pair_deadline_ms: Some(5),
    });
    let map = v.verify(&p);
    assert!(map.covers_probe_grid(6));
}

#[test]
fn verifier_threshold_larger_than_domain_never_splits() {
    let p = Encoder::encode(Dfa::VwnRpa, Condition::EcNonPositivity).unwrap();
    let v = Verifier::new(VerifierConfig {
        split_threshold: f64::INFINITY,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(100_000)),
        parallel: false,
        parallel_depth: 3,
        max_depth: 0,
        pair_deadline_ms: None,
    });
    let map = v.verify(&p);
    assert_eq!(map.regions.len(), 1);
}

#[test]
fn grid_minimum_resolution() {
    // Two points per axis is the smallest grid the gradient scheme accepts.
    let cfg = GridConfig {
        n_rs: 2,
        n_s: 2,
        n_alpha: 2,
        n_zeta: 2,
        tol: 1e-9,
    };
    for dfa in [Dfa::VwnRpa, Dfa::Pbe, Dfa::Scan] {
        let r = pb_check(dfa, Condition::EcNonPositivity, &cfg).unwrap();
        assert!(!r.pass.is_empty());
    }
}

#[test]
fn dsl_error_paths_do_not_panic() {
    use xcverifier::expr::dsl;
    let cases = [
        "",                                   // empty program
        "def f(x):\n",                        // missing body
        "def f(x):\n    return y\n",          // unbound name
        "def f(x):\n    return f(x)\n",       // recursion
        "def f(x):\n  if x:\n    return x\n", // malformed condition
        "x = 1\n",                            // statement at top level
        "def f(x):\n\treturn x\n",            // tab indentation
    ];
    let mut vars = VarSet::new();
    for src in cases {
        assert!(
            dsl::compile(src, "f", &mut vars).is_err(),
            "{src:?} should be rejected"
        );
    }
}

#[test]
fn expr_eval_extreme_magnitudes() {
    // exp of huge argument saturates to inf without panicking; interval
    // evaluation keeps containment.
    let e = var(0).exp();
    assert_eq!(e.eval(&[1e4]).unwrap(), f64::INFINITY);
    let enc = e.eval_interval(&[interval(1e4, 1e5)]);
    assert_eq!(enc.hi, f64::INFINITY);
    // Denormal-scale values survive round trips.
    let e = var(0) * 1e-300 / 1e-300;
    let v = e.eval(&[3.0]).unwrap();
    assert!((v - 3.0).abs() < 1e-9);
}

#[test]
fn interval_nan_constant_rejected() {
    let result = std::panic::catch_unwind(|| constant(f64::NAN));
    assert!(result.is_err(), "NaN constants must be rejected loudly");
}

#[test]
fn region_map_empty_regions_vector() {
    let dom = BoxDomain::from_bounds(&[(0.0, 1.0)]);
    let map = RegionMap::new(dom, vec![]);
    assert_eq!(map.table_mark(), TableMark::Unknown);
    assert!(map.counterexamples().is_empty());
    assert_eq!(map.volume_fraction(|_| true), 0.0);
}
