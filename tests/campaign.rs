//! Campaign regression tests — the acceptance criteria of the batch
//! engine redesign:
//!
//! * a campaign over the paper's five DFAs × seven conditions encodes
//!   exactly 31 pairs and produces the same `TableMark` per pair as the old
//!   per-pair `Encoder::encode` → `Verifier::verify` path;
//! * a DSL-defined functional registered at runtime flows through the same
//!   campaign machinery without touching the `Dfa` enum.

use std::sync::Arc;
use xcverifier::functionals::functional::info;
use xcverifier::prelude::*;

fn coarse_config(nodes: u64) -> VerifierConfig {
    VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(nodes)),
        parallel: false,
        parallel_depth: 3,
        max_depth: 3,
        pair_deadline_ms: None,
    }
}

/// Very coarse but fully deterministic settings (node budget only, no
/// wall-clock deadlines) so the campaign-vs-direct comparison is exact and
/// the double full-matrix run stays fast in debug builds.
fn matrix_config() -> VerifierConfig {
    VerifierConfig {
        split_threshold: 2.0,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(1_200)),
        parallel: false,
        parallel_depth: 3,
        max_depth: 2,
        pair_deadline_ms: None,
    }
}

#[test]
fn campaign_matches_per_pair_path_on_the_paper_matrix() {
    let config = matrix_config();
    let report = Campaign::builder()
        .registry(&Registry::builtin())
        .config(config.clone())
        .build()
        .unwrap()
        .run();

    // 5 × 7 = 35 cells, 31 of them encoded (the 4 LO cells of the
    // exchange-free DFAs are `−`).
    assert_eq!(report.pairs.len(), 35);
    assert_eq!(report.encoded_pairs(), 31);

    // Regression: every cell's mark equals the old per-pair path run with
    // the identical verifier config.
    let verifier = Verifier::new(config);
    for dfa in Dfa::all() {
        for cond in Condition::all() {
            let expected = match Encoder::encode(dfa, cond) {
                Ok(p) => verifier.verify(&p).table_mark(),
                Err(_) => TableMark::NotApplicable,
            };
            assert_eq!(
                report.mark(&dfa.to_string(), cond),
                Some(expected),
                "{dfa}/{cond}: campaign disagrees with per-pair path"
            );
        }
    }
}

#[test]
fn runtime_dsl_functional_runs_through_the_same_campaign() {
    // The "buggy build" from the custom_functional example: the damping
    // term's sign is flipped, so ε_c > 0 at large s — an EC1 violation the
    // campaign must find with zero enum involvement.
    const BUGGY: &str = "\
def wigner_c(rs, s):
    a = 0.44
    b = 7.8
    damp = 1 - 0.5 * s ** 2
    return -a / (b + rs) * damp
";
    const GOOD: &str = "\
def wigner_c(rs, s):
    a = 0.44
    b = 7.8
    damp = 1 / (1 + 0.5 * s ** 2)
    return -a / (b + rs) * damp
";
    let mut registry = Registry::empty();
    for (name, src) in [("wigner-good", GOOD), ("wigner-buggy", BUGGY)] {
        let f = DslFunctional::new(
            info(name, Family::Gga, Design::Empirical, false, true),
            src,
            "wigner_c",
        )
        .unwrap();
        registry.register(Arc::new(f)).unwrap();
    }

    let report = Campaign::builder()
        .registry(&registry)
        .conditions([Condition::EcNonPositivity])
        .config(coarse_config(30_000))
        .build()
        .unwrap()
        .run();

    assert_eq!(report.encoded_pairs(), 2);
    assert_eq!(
        report.mark("wigner-buggy", Condition::EcNonPositivity),
        Some(TableMark::Counterexample),
        "the flipped-sign build must be refuted"
    );
    // The witness must genuinely violate EC1 for the DSL functional.
    let buggy = registry.get("wigner-buggy").unwrap();
    for (name, _, w) in report.counterexamples() {
        assert_eq!(name, "wigner-buggy");
        assert!(buggy.eps_c(w[0], w[1], 0.0) > 0.0, "witness {w:?}");
    }
    // The correct build is never refuted (verified or undecided at this
    // budget, but no counterexample).
    assert_ne!(
        report.mark("wigner-good", Condition::EcNonPositivity),
        Some(TableMark::Counterexample)
    );
    // And the report renders as a table with the runtime columns.
    let md = Table1::from_campaign(&report).render_markdown();
    assert!(
        md.contains("wigner-good") && md.contains("wigner-buggy"),
        "{md}"
    );
}
