//! Acceptance suite for the contractor escalation ladder (interval-Newton
//! rung 1, 3B slab shaving rung 2):
//!
//! * **rung soundness** (proptest): a point whose exact satisfaction is
//!   *interval-certified* survives both rungs — `newton_contract` never
//!   refutes or contracts away a box around it, `shave_3b` never shaves
//!   it off, and a full-ladder solve never answers `Unsat` on a box
//!   containing it;
//! * **engine identity** (proptest): with the ladder armed, the batched
//!   frontier engine at widths 2 and 8 is bit-identical to the scalar
//!   DFS — same outcome, same model, same statistics;
//! * **pinned matrices**: the 45-pair extended and 66-pair ζ-resolved
//!   matrices verified with and without the ladder. The ladder runs as a
//!   retry on timed-out boxes, so every table mark must be unchanged or
//!   strictly better — timeouts may only become decisions; a decided
//!   mark (`OK`, `CE`) never changes;
//! * **certificates**: a ladder-armed campaign still emits certificates
//!   that replay under the independent `xcv_cert` checker, Newton/3B
//!   steps included.

use proptest::prelude::*;
use xcverifier::prelude::*;
use xcverifier::solver::{CompiledFormula, Escalation, SolveScratch, SolveStats};

// ---------------------------------------------------------------------------
// Random expressions (compact variant of tests/solver_batched.rs)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Recipe {
    Var(u8),
    Const(f64),
    Add(Box<Recipe>, Box<Recipe>),
    Mul(Box<Recipe>, Box<Recipe>),
    Div(Box<Recipe>, Box<Recipe>),
    Neg(Box<Recipe>),
    PowI(Box<Recipe>, i32),
    Exp(Box<Recipe>),
    LnShift(Box<Recipe>),
    Sqrt(Box<Recipe>),
    Tanh(Box<Recipe>),
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Recipe::Var),
        (-3.0f64..3.0).prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Div(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Recipe::Neg(Box::new(a))),
            (inner.clone(), 1i32..4).prop_map(|(a, n)| Recipe::PowI(Box::new(a), n)),
            inner.clone().prop_map(|a| Recipe::Exp(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::LnShift(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Sqrt(Box::new(a))),
            inner.prop_map(|a| Recipe::Tanh(Box::new(a))),
        ]
    })
}

fn build(r: &Recipe) -> Expr {
    match r {
        Recipe::Var(v) => var(*v as u32),
        Recipe::Const(c) => constant(*c),
        Recipe::Add(a, b) => build(a) + build(b),
        Recipe::Mul(a, b) => build(a) * build(b),
        Recipe::Div(a, b) => build(a) / build(b),
        Recipe::Neg(a) => -build(a),
        Recipe::PowI(a, n) => build(a).powi(*n),
        Recipe::Exp(a) => (build(a) * 0.25).exp(),
        Recipe::LnShift(a) => (build(a).powi(2) + 1.0).ln(),
        Recipe::Sqrt(a) => (build(a).powi(2) + 0.5).sqrt(),
        Recipe::Tanh(a) => build(a).tanh(),
    }
}

fn stats_key(s: &SolveStats) -> (u64, u64, u64, u32) {
    (s.nodes, s.pruned, s.branched, s.max_depth)
}

fn contains(b: &BoxDomain, point: &[f64]) -> bool {
    b.dims()
        .iter()
        .zip(point)
        .all(|(d, &p)| d.lo <= p && p <= d.hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rung soundness: interval-certified exact solutions survive every
    /// contractor of the ladder, and the assembled ladder never proves
    /// `Unsat` over a box that contains one.
    #[test]
    fn ladder_rungs_keep_certified_solutions(
        recipe in recipe_strategy(),
        lo in -0.5f64..0.5,
        band in 0.05f64..0.5,
        frac in (0.2f64..0.8, 0.2f64..0.8, 0.2f64..0.8),
    ) {
        let e = build(&recipe);
        // A band formula lo <= e <= lo+band: wide enough to have interior
        // solutions the f64 sampler below can certify.
        let f = Formula::new(vec![
            Atom::new(e.clone() - constant(lo), Rel::Ge),
            Atom::new(e - constant(lo + band), Rel::Le),
        ]);
        let compiled = CompiledFormula::compile(&f);
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0), (-1.0, 1.0)]);
        let point: Vec<f64> = b
            .dims()
            .iter()
            .zip([frac.0, frac.1, frac.2])
            .map(|(d, t)| d.lo + t * d.width())
            .collect();
        let mut scratch = SolveScratch::new();
        // Only certified solutions are load-bearing: an enclosure proof
        // that `point` satisfies every atom exactly.
        prop_assume!(compiled.holds_at_certified(&point, &mut scratch));
        // Rung 1 must neither refute the box nor contract the point away.
        let contracted = compiled.newton_contract(&b, 2, &mut scratch);
        prop_assert!(
            contracted.is_some(),
            "Newton refuted a box with a certified solution"
        );
        prop_assert!(
            contains(&contracted.unwrap(), &point),
            "Newton contracted a certified solution away"
        );
        // Rung 2 must not shave the point off any face.
        if let Some(shaved) = compiled.shave_3b(&b, &mut scratch, 0.125, 2, None, |_, _, _| {}) {
            prop_assert!(contains(&shaved, &point), "3B shaved a certified solution off");
        }
        // The assembled ladder: never Unsat over a certified solution.
        let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(400))
            .with_escalation(Escalation::full());
        let (outcome, _) = solver.solve_compiled_with_stats(&b, &compiled, &mut scratch);
        prop_assert!(
            !matches!(outcome, Outcome::Unsat),
            "ladder proved Unsat over a certified solution: {:?}",
            outcome
        );
    }

    /// Engine identity with the ladder armed: batched widths 2 and 8 equal
    /// the scalar DFS bit for bit — outcomes, models, statistics.
    #[test]
    fn ladder_batched_matches_scalar_any_width(
        recipe in recipe_strategy(),
        lo in -0.5f64..0.5,
        band in 0.05f64..0.5,
        budget in 1u8..4,
    ) {
        let e = build(&recipe);
        let f = Formula::new(vec![
            Atom::new(e.clone() - constant(lo), Rel::Ge),
            Atom::new(e - constant(lo + band), Rel::Le),
        ]);
        let compiled = CompiledFormula::compile(&f);
        let nodes = [30u64, 400, 5_000][(budget % 3) as usize];
        let scalar = DeltaSolver::new(1e-3, SolveBudget::nodes(nodes))
            .with_escalation(Escalation::full());
        let mut scratch = SolveScratch::new();
        let boxes = [
            BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0), (-1.0, 1.0)]),
            BoxDomain::from_bounds(&[(0.0, 0.5), (-1.0, 0.0), (0.2, 0.9)]),
        ];
        for b in &boxes {
            let (want, want_stats) = scalar.solve_compiled_with_stats(b, &compiled, &mut scratch);
            for w in [2usize, 8] {
                let batched = scalar.clone().with_batch_width(w);
                let (got, got_stats) =
                    batched.solve_compiled_with_stats(b, &compiled, &mut scratch);
                prop_assert_eq!(&want, &got, "ladder width {} diverged over {}", w, b);
                prop_assert_eq!(
                    stats_key(&want_stats),
                    stats_key(&got_stats),
                    "ladder width {} stats diverged over {}",
                    w,
                    b
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned matrices: marks unchanged-or-strictly-better under the ladder
// ---------------------------------------------------------------------------

fn quick_config(escalation: Escalation) -> VerifierConfig {
    let mut solver = DeltaSolver::new(1e-3, SolveBudget::nodes(250)).with_batch_width(8);
    solver.escalation = escalation;
    VerifierConfig {
        split_threshold: 1.25,
        solver,
        parallel: false,
        parallel_depth: 0,
        max_depth: 1,
        pair_deadline_ms: None,
    }
}

/// The only transitions the ladder may cause: timeouts becoming decisions.
/// `?` may become anything decided, `OK*` may complete to `OK` or surface
/// a counterexample the budget had hidden; `OK`, `CE` and `−` are final.
fn mark_monotone(before: TableMark, after: TableMark) -> bool {
    use TableMark::*;
    before == after
        || matches!(
            (before, after),
            (Unknown, Verified | PartiallyVerified | Counterexample)
                | (PartiallyVerified, Verified | Counterexample)
        )
}

fn assert_matrix_monotone(problems: &[EncodedProblem]) {
    for p in problems {
        let (plain, _) = Verifier::new(quick_config(Escalation::off())).verify_with_stats(p);
        let (ladder, _) = Verifier::new(quick_config(Escalation::full())).verify_with_stats(p);
        assert!(
            mark_monotone(plain.table_mark(), ladder.table_mark()),
            "ladder regressed {} / {}: {:?} -> {:?}",
            p.functional_name(),
            p.condition.name(),
            plain.table_mark(),
            ladder.table_mark()
        );
    }
}

#[test]
fn pinned_extended_matrix_ladder_marks_monotone() {
    let problems = Encoder::encode_all_extended();
    assert_eq!(problems.len(), 45);
    assert_matrix_monotone(&problems);
}

#[test]
fn pinned_spin_matrix_ladder_marks_monotone() {
    // The ζ-resolved matrix: 4-D cells, support-aware splits, the widest
    // Newton gradient programs (per-spin s_σ axes).
    let problems = Encoder::encode_all_spin();
    assert_eq!(problems.len(), 66);
    assert_matrix_monotone(&problems);
}

// ---------------------------------------------------------------------------
// Certificates: ladder steps replay under the independent checker
// ---------------------------------------------------------------------------

#[test]
fn ladder_campaign_certificates_replay() {
    let config = VerifierConfig {
        split_threshold: 1.25,
        // A deliberately tight budget so some boxes time out at rung 0 and
        // the certificates exercise the retry path's Newton/3B steps.
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(600)),
        parallel: false,
        parallel_depth: 0,
        max_depth: 3,
        pair_deadline_ms: None,
    };
    let report = Campaign::builder()
        .functionals([Dfa::VwnRpa, Dfa::Lyp])
        .conditions([Condition::EcNonPositivity])
        .config(config)
        .escalation(Escalation::full())
        .emit_certificates(true)
        .build()
        .unwrap()
        .run();
    assert_eq!(
        report.mark("VWN RPA", Condition::EcNonPositivity),
        Some(TableMark::Verified)
    );
    assert_eq!(
        report.mark("LYP", Condition::EcNonPositivity),
        Some(TableMark::Counterexample)
    );
    for p in &report.pairs {
        let cert = p
            .certificate
            .as_ref()
            .unwrap_or_else(|| panic!("{} should certify under the ladder", p.functional_name()));
        let audit = xcverifier::cert::check(cert).expect("ladder certificate replays");
        assert_eq!(audit.regions, cert.regions.len());
        // And through the exact JSON `xcvcheck` reads.
        let back = Certificate::parse(&cert.to_json()).expect("wire format round-trips");
        xcverifier::cert::check(&back).expect("parsed ladder certificate replays");
    }
}
