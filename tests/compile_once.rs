//! The compile-once acceptance tests: per-box solving must never construct
//! contractors, topo orders, or gradients. [`xcverifier::solver`] exposes a
//! process-wide compilation counter; this file lives in its own test binary
//! so no unrelated test compiles formulas while a counter window is open,
//! and the tests themselves serialize through a mutex.

use std::sync::Mutex;
use xcverifier::prelude::*;

/// Serialize the counter windows (tests within one binary run on threads).
static COUNTER_WINDOW: Mutex<()> = Mutex::new(());

fn compile_count() -> u64 {
    xcverifier::solver::compile_count()
}

#[test]
fn verify_recursion_never_compiles() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    // Encoding compiles (once per problem: negation + ψ)…
    let before_encode = compile_count();
    let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
    let encode_compiles = compile_count() - before_encode;
    assert!(
        (1..=3).contains(&encode_compiles),
        "encode should compile a constant number of programs, got {encode_compiles}"
    );
    // …and the whole verifier recursion afterwards compiles nothing.
    let v = Verifier::new(VerifierConfig {
        split_threshold: 0.3,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(20_000)),
        parallel: true, // worker threads must inherit the no-compile property
        parallel_depth: 2,
        max_depth: 5,
        pair_deadline_ms: None,
    });
    let before_verify = compile_count();
    let map = v.verify(&p);
    assert_eq!(
        compile_count(),
        before_verify,
        "verifying {} regions recompiled the formula",
        map.regions.len()
    );
    assert!(map.regions.len() > 10, "recursion was expected to fan out");
    assert_eq!(map.table_mark(), TableMark::Counterexample);
}

#[test]
fn campaign_compiles_once_per_cell() {
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let before = compile_count();
    let report = Campaign::builder()
        .functionals([Dfa::VwnRpa, Dfa::Lyp])
        .conditions([Condition::EcNonPositivity, Condition::EcScaling])
        .config(VerifierConfig {
            split_threshold: 1.25,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(5_000)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 3,
            pair_deadline_ms: None,
        })
        .build()
        .unwrap()
        .run();
    let compiles = compile_count() - before;
    let cells = report.encoded_pairs() as u64;
    assert_eq!(cells, 4);
    // At most a constant number of compilations per encoded cell (negation +
    // ψ), regardless of how many boxes each pair's recursion visited.
    assert!(
        compiles <= 3 * cells,
        "{compiles} compilations for {cells} cells"
    );
    let solved: u64 = report
        .pairs
        .iter()
        .filter_map(|p| p.map.as_ref())
        .map(|m| m.regions.len() as u64)
        .sum();
    assert!(solved > cells, "recursion visited more boxes than cells");
}

#[test]
fn solver_session_never_compiles() {
    // Pure solver level (no verifier): one compiled formula + one scratch
    // across many boxes moves the counter by exactly zero.
    let _guard = COUNTER_WINDOW.lock().unwrap();
    use xcverifier::solver::{CompiledFormula, SolveScratch};
    let f = Formula::single(Atom::new(xcverifier::expr::var(0).powi(2) + 1.0, Rel::Le));
    let compiled = CompiledFormula::compile(&f);
    let mut scratch = SolveScratch::new();
    let s = DeltaSolver::new(1e-3, SolveBudget::nodes(1_000));
    let before = compile_count();
    for i in 0..20 {
        let b = BoxDomain::from_bounds(&[(-10.0 + i as f64, -9.0 + i as f64)]);
        assert_eq!(
            s.solve_compiled(&b, &compiled, &mut scratch),
            Outcome::Unsat
        );
    }
    assert_eq!(compile_count(), before, "per-box solving must not compile");
}

#[test]
fn one_shot_solve_still_compiles_per_call() {
    // The legacy signature keeps its compile-then-solve semantics — that is
    // what the equivalence suite measures the session path against.
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let f = Formula::single(Atom::new(xcverifier::expr::var(0).powi(2) + 1.0, Rel::Le));
    let b = BoxDomain::from_bounds(&[(-5.0, 5.0)]);
    let s = DeltaSolver::new(1e-3, SolveBudget::nodes(1_000));
    let before = compile_count();
    for _ in 0..3 {
        assert_eq!(s.solve(&b, &f), Outcome::Unsat);
    }
    assert_eq!(compile_count() - before, 3);
}
