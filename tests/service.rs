//! Integration tests for the verification service: an in-process daemon on
//! an ephemeral port, driven through the real TCP wire protocol.
//!
//! What is pinned here is the service's one contract: *identical marks,
//! different wall-clock*. A warm repeat of the extended 45-pair matrix must
//! answer entirely from the level-2 result cache (zero solves, flat
//! process-global tape-compile counter), a config change must fall back to
//! the level-1 compiled-problem cache (fresh solves, still zero new tape
//! compilations), N concurrent identical queries must coalesce onto one
//! solve, and a daemon restarted over the same store directory must warm
//! from disk.

use std::collections::BTreeMap;
use xcv_core::{Campaign, TableMark};
use xcv_functionals::Registry;
use xcv_serve::{Client, Event, Policy, Server, ServerConfig, VerifyRequest};

/// A small deterministic flat policy: node-budgeted, sequential, cheap
/// enough that the whole 45-pair matrix solves in seconds.
fn flat(max_nodes: u64) -> Policy {
    Policy::Flat {
        delta: 1e-3,
        max_nodes,
        split_threshold: 0.625,
        max_depth: 1,
    }
}

fn extended_request(policy: Policy) -> VerifyRequest {
    VerifyRequest {
        functionals: Registry::extended()
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect(),
        conditions: Vec::new(), // all seven
        policy,
    }
}

/// Run one verify and collect `(functional, condition-id) -> mark` plus the
/// terminal summary. Event order is completion order on a cold pass and
/// matrix order warm, so marks are compared as a map, never as a sequence.
fn verify_marks(
    client: &mut Client,
    req: &VerifyRequest,
) -> (BTreeMap<(String, String), TableMark>, xcv_serve::Done) {
    let mut marks = BTreeMap::new();
    let done = client
        .verify(req, |e| {
            if let Event::Pair {
                functional,
                condition,
                mark,
                ..
            } = e
            {
                let prev = marks.insert((functional.clone(), condition.id().to_string()), *mark);
                assert!(prev.is_none(), "duplicate pair event for {functional}");
            }
        })
        .expect("verify succeeds");
    (marks, done)
}

#[test]
fn warm_pass_is_cached_and_marks_match_in_process_campaign() {
    let mut server = Server::spawn(ServerConfig::default()).expect("ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");
    let policy = flat(150);
    let req = extended_request(policy);

    let (cold_marks, cold) = verify_marks(&mut client, &req);
    assert_eq!(cold.pairs, 49, "7 functionals x 7 conditions");
    // Even the cold pass dedupes: BLYP's five correlation conditions are
    // *content-identical* to LYP's (BLYP = B88 exchange + LYP correlation,
    // and ec1/ec2/ec3/ec6/ec7 test only Ec), so those cells hit the result
    // cache the moment LYP's land — 40 distinct problems in a 45-pair
    // matrix.
    assert_eq!(cold.cached, 5);
    assert_eq!(cold.solved, 40, "40 distinct problems solved cold");
    assert_eq!(cold.l1_misses, 40, "every distinct problem compiled once");

    // Warm repeat: all 45 applicable pairs answered from the result store,
    // nothing solved, and the daemon's problem cache untouched. (The
    // strict flat-compile_count assertion lives in tests/service_compile.rs
    // — its own test binary — because the counter is process-global and
    // sibling tests in this one compile tapes concurrently.)
    let (warm_marks, warm) = verify_marks(&mut client, &req);
    assert_eq!(warm_marks, cold_marks, "marks must be bit-identical");
    assert_eq!(warm.cached, 45);
    assert_eq!(warm.solved, 0);
    assert_eq!(
        (warm.l1_hits, warm.l1_misses),
        (0, 0),
        "a fully warm pass never reaches the problem cache"
    );

    // The service's marks are the campaign's marks: same matrix, same
    // config, solved in-process without any daemon.
    let reference = Campaign::builder()
        .registry(&Registry::extended())
        .config_policy(move |f, _| policy.verifier_config(f))
        .build()
        .unwrap()
        .run();
    for p in &reference.pairs {
        let key = (p.functional_name(), p.condition.id().to_string());
        assert_eq!(
            warm_marks.get(&key),
            Some(&p.mark),
            "service and in-process campaign disagree on {key:?}"
        );
    }

    // A changed solver config is a different level-2 key: everything
    // re-solves — but through the level-1 compiled-problem cache, so the
    // tape-compile counter stays flat while the problem cache reports hits.
    let (_, reconfigured) = verify_marks(&mut client, &extended_request(flat(200)));
    assert_eq!(
        reconfigured.solved, 40,
        "new config fingerprint: no L2 hits"
    );
    // All level-1 hits, zero misses: every re-solve reused a compiled
    // problem — only misses ever compile a tape.
    assert_eq!(reconfigured.l1_hits, 40, "same problems: all L1 hits");
    assert_eq!(reconfigured.l1_misses, 0);
    server.shutdown();
}

#[test]
fn concurrent_identical_queries_coalesce_to_one_solve() {
    let server = Server::spawn(ServerConfig::default()).expect("ephemeral port");
    let addr = server.addr();
    // One pair, asked by 8 clients at once. Exactly one becomes the
    // leader; the rest wait on the in-flight solve (level 3) or hit the
    // memo, and every answer carries the same mark.
    let req = VerifyRequest {
        functionals: vec!["VWN RPA".to_string()],
        conditions: vec![xcv_conditions::Condition::EcNonPositivity],
        policy: flat(400),
    };
    let answers: Vec<_> = (0..8)
        .map(|_| {
            let req = req.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                verify_marks(&mut client, &req)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    let (first_marks, _) = &answers[0];
    let mut solved_total = 0;
    for (marks, done) in &answers {
        assert_eq!(marks, first_marks);
        assert_eq!(done.cached + done.solved, 1);
        solved_total += done.solved;
    }
    assert_eq!(solved_total, 1, "8 identical queries, exactly one solve");
    let stats = server.stats();
    assert_eq!(stats.solves, 1);
    assert_eq!(stats.result_hits, 7);
}

#[test]
fn restarted_daemon_warms_from_the_store_directory() {
    let dir = std::env::temp_dir().join(format!("xcv_service_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = || ServerConfig {
        store_dir: Some(dir.clone()),
        admit_ms: 0, // persist everything, however cheap
        ..ServerConfig::default()
    };
    let req = VerifyRequest {
        functionals: vec!["PBE".to_string(), "LYP".to_string()],
        conditions: Vec::new(),
        policy: flat(150),
    };
    let (first_marks, first_solved) = {
        let mut server = Server::spawn(config()).expect("ephemeral port");
        let mut client = Client::connect(server.addr()).expect("connect");
        let (marks, done) = verify_marks(&mut client, &req);
        assert!(done.solved > 0);
        server.shutdown();
        (marks, done.solved)
    };
    // A fresh daemon over the same directory answers without solving.
    let mut server = Server::spawn(config()).expect("ephemeral port");
    assert_eq!(
        server.stats().warm_loaded,
        first_solved,
        "every persisted result loaded from disk"
    );
    let mut client = Client::connect(server.addr()).expect("connect");
    let (marks, done) = verify_marks(&mut client, &req);
    assert_eq!(marks, first_marks);
    assert_eq!(done.solved, 0, "fully warm from disk");
    assert_eq!(done.cached, first_solved);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_control_commands_round_trip() {
    let mut server = Server::spawn(ServerConfig::default()).expect("ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("pong");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.results, 0);
    // Unknown functionals fail the request without killing the connection.
    let err = client
        .verify(
            &VerifyRequest {
                functionals: vec!["NOPE".to_string()],
                conditions: Vec::new(),
                policy: flat(100),
            },
            |_| {},
        )
        .expect_err("unknown functional");
    assert!(err.contains("NOPE"), "{err}");
    client.ping().expect("connection still alive");
    server.shutdown();
}
