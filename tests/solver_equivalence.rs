//! Equivalence suite for the compile-once rework: the session path
//! (`CompiledFormula` + reused `SolveScratch`) must be observationally
//! identical both to the one-shot wrapper (`DeltaSolver::solve`, which
//! compiles afresh on every invocation) and — crucially — to the **seed
//! architecture itself**, vendored verbatim in
//! `xcv_bench::seed_baseline::seed_solve_with_stats` (hash-mapped
//! `IntervalEnv` passes, recursive-evaluator branch scoring). Comparing
//! against the vendored seed keeps a transcription bug in the new tape
//! rules from silently agreeing with itself.
//!
//! Two layers:
//!
//! * proptest (local shim): random expression formulas over random boxes —
//!   same `Outcome` class, and identical models when δ-SAT (the search is
//!   deterministic);
//! * the pinned 45-pair `encode_all_extended()` matrix: a hand-rolled
//!   replica of Algorithm 1 running the vendored seed solver per box must
//!   produce the same `TableMark` as the production verifier running on the
//!   shared compiled problem.

use proptest::prelude::*;
use xcv_bench::seed_baseline::seed_solve_with_stats;
use xcverifier::prelude::*;
use xcverifier::solver::{CompiledFormula, SolveScratch};

// ---------------------------------------------------------------------------
// Random formula generation (compact variant of tests/proptests.rs)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Recipe {
    Var(u8),
    Const(f64),
    Add(Box<Recipe>, Box<Recipe>),
    Mul(Box<Recipe>, Box<Recipe>),
    Div(Box<Recipe>, Box<Recipe>),
    Neg(Box<Recipe>),
    PowI(Box<Recipe>, i32),
    Exp(Box<Recipe>),
    LnShift(Box<Recipe>),
    Atan(Box<Recipe>),
    Tanh(Box<Recipe>),
    Abs(Box<Recipe>),
    Min(Box<Recipe>, Box<Recipe>),
    Max(Box<Recipe>, Box<Recipe>),
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        (0u8..2).prop_map(Recipe::Var),
        (-3.0f64..3.0).prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Div(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Recipe::Neg(Box::new(a))),
            (inner.clone(), 1i32..4).prop_map(|(a, n)| Recipe::PowI(Box::new(a), n)),
            inner.clone().prop_map(|a| Recipe::Exp(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::LnShift(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Atan(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Tanh(Box::new(a))),
            inner.clone().prop_map(|a| Recipe::Abs(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Recipe::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(r: &Recipe) -> Expr {
    match r {
        Recipe::Var(v) => var(*v as u32),
        Recipe::Const(c) => constant(*c),
        Recipe::Add(a, b) => build(a) + build(b),
        Recipe::Mul(a, b) => build(a) * build(b),
        Recipe::Div(a, b) => build(a) / build(b),
        Recipe::Neg(a) => -build(a),
        Recipe::PowI(a, n) => build(a).powi(*n),
        Recipe::Exp(a) => (build(a) * 0.25).exp(), // damp to avoid overflow
        Recipe::LnShift(a) => (build(a).powi(2) + 1.0).ln(),
        Recipe::Atan(a) => build(a).atan(),
        Recipe::Tanh(a) => build(a).tanh(),
        Recipe::Abs(a) => build(a).abs(),
        Recipe::Min(a, b) => build(a).min(&build(b)),
        Recipe::Max(a, b) => build(a).max(&build(b)),
    }
}

fn outcome_class(o: &Outcome) -> &'static str {
    match o {
        Outcome::Unsat => "unsat",
        Outcome::DeltaSat(_) => "delta-sat",
        Outcome::Timeout => "timeout",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Session solving (compiled once, scratch reused across boxes) agrees
    /// with per-call solving on outcome class and on the exact model.
    #[test]
    fn session_agrees_with_per_call(
        recipe in recipe_strategy(),
        lo in -0.5f64..0.5,
        band in 0.05f64..0.5,
    ) {
        let e = build(&recipe);
        let f = Formula::new(vec![
            Atom::new(e.clone() - constant(lo), Rel::Ge),
            Atom::new(e - constant(lo + band), Rel::Le),
        ]);
        let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(2_000));
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        // The seed architecture always bisects the globally widest axis; the
        // current solver deliberately never splits (nor δ-gates on) axes the
        // formula does not mention. The two searches coincide exactly when
        // the support set covers every box axis — or none (the constant-
        // formula fallback is the legacy policy). Partial-support recipes
        // keep the fresh-vs-session check below but skip the seed compare.
        let seed_comparable = matches!(compiled.support_mask() & 0b11, 0 | 0b11);
        // Several boxes against one scratch: reuse must not leak state.
        let boxes = [
            BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]),
            BoxDomain::from_bounds(&[(0.0, 0.5), (-1.0, 0.0)]),
            BoxDomain::from_bounds(&[(-1.0, -0.25), (0.25, 1.0)]),
        ];
        for b in &boxes {
            let fresh = solver.solve(b, &f);
            let session = solver.solve_compiled(b, &compiled, &mut scratch);
            prop_assert_eq!(
                outcome_class(&fresh),
                outcome_class(&session),
                "outcome class diverged on {} over {}",
                f,
                b
            );
            if let (Outcome::DeltaSat(a), Outcome::DeltaSat(c)) = (&fresh, &session) {
                prop_assert_eq!(a, c, "deterministic search produced different models");
            }
            if seed_comparable {
                let (seed, _) = seed_solve_with_stats(&solver, b, &f);
                prop_assert_eq!(
                    outcome_class(&seed),
                    outcome_class(&session),
                    "session diverged from the seed architecture on {} over {}",
                    f,
                    b
                );
                if let (Outcome::DeltaSat(a), Outcome::DeltaSat(c)) = (&seed, &session) {
                    prop_assert_eq!(a, c, "session and seed found different models");
                }
            }
        }
    }

    /// Same equivalence with the mean-value contractor enabled (gradients
    /// are compiled lazily, once, inside the session).
    #[test]
    fn session_agrees_with_per_call_mean_value(
        recipe in recipe_strategy(),
        lo in -0.5f64..0.5,
    ) {
        let e = build(&recipe);
        let f = Formula::new(vec![
            Atom::new(e.clone() - constant(lo), Rel::Ge),
            Atom::new(e - constant(lo + 0.2), Rel::Le),
        ]);
        let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(1_000)).with_mean_value(true);
        let compiled = CompiledFormula::compile(&f);
        let mut scratch = SolveScratch::new();
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]);
        let fresh = solver.solve(&b, &f);
        let session = solver.solve_compiled(&b, &compiled, &mut scratch);
        prop_assert_eq!(outcome_class(&fresh), outcome_class(&session));
        if let (Outcome::DeltaSat(a), Outcome::DeltaSat(c)) = (&fresh, &session) {
            prop_assert_eq!(a, c);
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned matrix: 45 extended pairs, compiled verifier vs per-box recompile
// ---------------------------------------------------------------------------

/// A faithful replica of `Verifier::go` running the *vendored seed solver*
/// per box (hash-mapped `IntervalEnv` contractor rebuilt every call) — the
/// pre-rework architecture, end to end.
fn legacy_verify(cfg: &VerifierConfig, problem: &EncodedProblem) -> RegionMap {
    fn go(
        cfg: &VerifierConfig,
        d: &BoxDomain,
        problem: &EncodedProblem,
        depth: u32,
    ) -> Vec<Region> {
        let (outcome, _) = seed_solve_with_stats(&cfg.solver, d, problem.negation());
        let status = match outcome {
            Outcome::Unsat => RegionStatus::Verified,
            Outcome::DeltaSat(model) => {
                if !problem.psi().holds_at(&model) {
                    RegionStatus::Counterexample(model)
                } else {
                    RegionStatus::Inconclusive
                }
            }
            Outcome::Timeout => RegionStatus::Timeout,
        };
        let can_split = d.max_width() / 2.0 >= cfg.split_threshold && depth < cfg.max_depth;
        if matches!(status, RegionStatus::Verified) || !can_split {
            return vec![Region {
                domain: d.clone(),
                status,
            }];
        }
        let mut out = Vec::new();
        for c in &d.split_all() {
            out.extend(go(cfg, c, problem, depth + 1));
        }
        out
    }
    RegionMap::new(problem.domain.clone(), go(cfg, &problem.domain, problem, 0))
}

#[test]
fn pinned_extended_matrix_marks_agree() {
    // Node budgets (not wall-clock) keep both paths deterministic; the
    // compiled path must reproduce the seed path's mark on all 45 pairs.
    // Depth 1 keeps the legacy replica tractable — it recompiles SCAN-class
    // formulas on every box, which is precisely the cost the rework removed.
    let cfg = VerifierConfig {
        split_threshold: 1.0,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(600)),
        parallel: false,
        parallel_depth: 3,
        max_depth: 1,
        pair_deadline_ms: None,
    };
    let problems = Encoder::encode_all_extended();
    assert_eq!(problems.len(), 45);
    let verifier = Verifier::new(cfg.clone());
    for p in &problems {
        let compiled_mark = verifier.verify(p).table_mark();
        let legacy_mark = legacy_verify(&cfg, p).table_mark();
        assert_eq!(
            compiled_mark,
            legacy_mark,
            "marks diverged on {} / {}",
            p.functional_name(),
            p.condition.name()
        );
    }
}

#[test]
fn deep_recursion_marks_agree_on_cheap_pair() {
    // A deeper tree (several split levels) on an LDA/GGA pair, where the
    // legacy per-box recompile is affordable: region-level agreement, not
    // just the aggregate mark.
    let cfg = VerifierConfig {
        split_threshold: 0.4,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(5_000)),
        parallel: false,
        parallel_depth: 3,
        max_depth: 4,
        pair_deadline_ms: None,
    };
    for (dfa, cond) in [
        (Dfa::Lyp, Condition::EcNonPositivity),
        (Dfa::VwnRpa, Condition::EcScaling),
    ] {
        let p = Encoder::encode(dfa, cond).unwrap();
        let compiled = Verifier::new(cfg.clone()).verify(&p);
        let legacy = legacy_verify(&cfg, &p);
        assert_eq!(compiled.table_mark(), legacy.table_mark());
        assert_eq!(compiled.regions.len(), legacy.regions.len());
        for (a, b) in compiled.regions.iter().zip(&legacy.regions) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(
                std::mem::discriminant(&a.status),
                std::mem::discriminant(&b.status),
                "status diverged on {} at {}",
                p.functional_name(),
                a.domain
            );
        }
    }
}
