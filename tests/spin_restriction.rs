//! Property suite for the spin citizens' restriction laws: every
//! ζ-resolved registry citizen, restricted to `ζ = 0` (and, for the
//! per-spin exchange citizens, `s↑ = s↓ = s`), must agree with its
//! three-argument form — scalar *and* symbolic — at random points of the
//! PB domain. Plus the compile-once check that the typed-axis refactor did
//! not add lowerings per cell.
//!
//! Runs at `PROPTEST_CASES` cases per property (tier-1 dials it down; the
//! CI release job runs the full count).

use proptest::prelude::*;
use std::sync::Mutex;
use xcverifier::functionals::{b88, pbe, pw92};
use xcverifier::prelude::*;

/// Serialize against other formula-compiling tests in this binary (the
/// compile counter is process-wide).
static COUNTER_WINDOW: Mutex<()> = Mutex::new(());

proptest! {
    /// Scalar restriction: the 4-arg surface at ζ = 0 (s↑ = s↓ = s for the
    /// per-spin citizens) equals the inherited 3-arg form, which equals the
    /// base unpolarized module.
    #[test]
    fn zeta_zero_scalar_restriction(
        rs in 1e-4f64..5.0,
        s in 0.0f64..5.0,
        alpha in 0.0f64..5.0,
    ) {
        // Scalar-factor citizens: point order (rs, s, α, ζ).
        let spbe = SpinResolved::pbe();
        let v = spbe.eps_c_at(&[rs, s, alpha, 0.0]);
        prop_assert!((v - pbe::eps_c(rs, s)).abs() <= 1e-12 * v.abs().max(1e-12));
        let spw = SpinResolved::pw92();
        let v = spw.eps_c_at(&[rs, s, alpha, 0.0]);
        prop_assert!((v - pw92::eps_c(rs)).abs() <= 1e-13 * v.abs().max(1e-13));
        let lsda = SpinResolved::lsda_x();
        prop_assert_eq!(lsda.f_x_at(&[rs, s, alpha, 0.0]), Some(1.0));
        // Per-spin citizens: point order (rs, s↑, s↓, ζ), diagonal s↑=s↓=s.
        for (citizen, base) in [
            (SpinScaledX::b88(), b88::f_x as fn(f64) -> f64),
            (SpinScaledX::pbe_x(), pbe::f_x as fn(f64) -> f64),
        ] {
            let got = citizen.f_x_at(&[rs, s, s, 0.0]).unwrap();
            let want = base(s);
            prop_assert!(
                (got - want).abs() <= 1e-13 * want.abs().max(1e-13),
                "{}: {} vs {}", citizen.name(), got, want
            );
            // The 3-arg form is that same restriction.
            prop_assert_eq!(citizen.f_x(s, alpha), Some(want));
            prop_assert_eq!(citizen.eps_c_at(&[rs, s, s, 0.0]), 0.0);
        }
    }

    /// Symbolic restriction: every spin citizen's DAG, evaluated at the
    /// restricted point, equals the base citizen's DAG at the 3-arg point —
    /// the encoder-facing half of the restriction law.
    #[test]
    fn zeta_zero_symbolic_restriction(
        rs in 1e-4f64..5.0,
        s in 0.0f64..5.0,
        alpha in 0.0f64..5.0,
    ) {
        let scalar_env = [rs, s, alpha, 0.0];
        let eps = SpinResolved::pbe().eps_c_expr().eval(&scalar_env).unwrap();
        let base = Dfa::Pbe.eps_c_expr().eval(&[rs, s, alpha]).unwrap();
        prop_assert!((eps - base).abs() <= 1e-11 * base.abs().max(1e-11));
        let eps = SpinResolved::pw92().eps_c_expr().eval(&scalar_env).unwrap();
        let base = pw92::eps_c_expr().eval(&[rs, s, alpha]).unwrap();
        prop_assert!((eps - base).abs() <= 1e-12 * base.abs().max(1e-12));
        // Per-spin diagonal: (rs, s, s, 0) against the base F_x DAG.
        let diag_env = [rs, s, s, 0.0];
        for (citizen, base_expr) in [
            (SpinScaledX::b88(), b88::f_x_expr()),
            (SpinScaledX::pbe_x(), xcverifier::functionals::pbe::f_x_expr()),
        ] {
            let sym = citizen.f_x_expr().unwrap().eval(&diag_env).unwrap();
            let want = base_expr.eval(&[rs, s, alpha]).unwrap();
            prop_assert!(
                (sym - want).abs() <= 1e-12 * want.abs().max(1e-12),
                "{}: {} vs {}", citizen.name(), sym, want
            );
        }
    }

    /// The symbolic surface and the scalar surface agree *off* the
    /// restriction too — random full-space points per citizen, the DAG the
    /// solver sees against the closed form the grid samples.
    #[test]
    fn full_surface_symbolic_scalar_agreement(
        rs in 1e-4f64..5.0,
        a in 0.0f64..5.0,
        b in 0.0f64..5.0,
        z in -1.0f64..1.0,
    ) {
        for f in Registry::spin().iter() {
            let p = [rs, a, b, z];
            let sym = f.eps_c_expr().eval(&p).unwrap();
            let num = f.eps_c_at(&p);
            prop_assert!(
                (sym - num).abs() <= 1e-9 * num.abs().max(1e-9),
                "{}: ε_c {} vs {}", f.name(), sym, num
            );
            if let Some(e) = f.f_x_expr() {
                let sym = e.eval(&p).unwrap();
                let num = f.f_x_at(&p).unwrap();
                prop_assert!(
                    (sym - num).abs() <= 1e-11 * num.abs().max(1e-11),
                    "{}: F_x {} vs {}", f.name(), sym, num
                );
            }
        }
    }
}

#[test]
fn axis_refactor_adds_no_lowerings_per_cell() {
    // The typed-axis refactor must not change the compile-once contract:
    // one formula lowering per encoded cell (ψ shares the ¬ψ tape), plus at
    // most the lazily-built mean-value program — nothing per box, for the
    // per-spin citizens exactly like the rest of the matrix.
    let _guard = COUNTER_WINDOW.lock().unwrap();
    let cells = [
        Encoder::encode(
            std::sync::Arc::new(SpinScaledX::b88()) as FunctionalHandle,
            Condition::LiebOxfordExt,
        )
        .unwrap(),
        Encoder::encode(
            std::sync::Arc::new(SpinScaledX::pbe_x()) as FunctionalHandle,
            Condition::LiebOxford,
        )
        .unwrap(),
        Encoder::encode(Dfa::Pbe, Condition::EcNonPositivity).unwrap(),
    ];
    let before = xcverifier::solver::compile_count();
    let config = VerifierConfig {
        split_threshold: 1.25,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(300)),
        parallel: false,
        parallel_depth: 0,
        max_depth: 2,
        pair_deadline_ms: None,
    };
    for p in &cells {
        let map = Verifier::new(config.clone()).verify(p);
        assert!(!map.regions.is_empty());
    }
    let compiles = xcverifier::solver::compile_count() - before;
    // Everything was compiled at encode time: verifying N boxes per cell
    // adds at most the once-per-formula mean-value gradient build.
    assert!(
        compiles <= cells.len() as u64,
        "{compiles} lowerings while verifying {} pre-encoded cells",
        cells.len()
    );
    // And the compiled problems carry their typed spaces.
    assert_eq!(
        cells[0].compiled().var_space().unwrap().names(),
        vec!["rs", "s_up", "s_dn", "zeta"]
    );
}
